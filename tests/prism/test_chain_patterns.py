"""Higher-order chain patterns the primitives compose into."""

import pytest

from repro.core import FetchAddOp, ReadOp, WriteOp, chain
from repro.core.constants import (
    MAX_CONNECTIONS_PER_NIC,
    NIC_SRAM_BYTES,
    REDIRECT_SLOT_BYTES,
)
from repro.hw.memory import MemoryError_
from repro.net.topology import DIRECT, make_fabric
from repro.prism import HardwarePrismBackend, PrismClient, PrismServer
from repro.prism.engine import OpStatus


@pytest.fixture
def system(sim):
    fabric = make_fabric(sim, DIRECT, ["client", "server"])
    server = PrismServer(sim, fabric, "server", HardwarePrismBackend)
    addr, rkey = server.add_region(8192)
    client = PrismClient(sim, fabric, "client", server)
    return server, client, addr, rkey


def test_remote_memcpy_pattern(sim, system, drive):
    """Server-side copy in ONE round trip: READ src redirected to
    scratch, then WRITE dst with data_indirect from scratch — no data
    ever crosses the network."""
    server, client, addr, rkey = system
    src, dst = addr, addr + 1024
    server.space.write(src, b"copy me server side!")
    tmp = client.sram_slot

    def main():
        result = yield from client.execute(chain(
            ReadOp(addr=src, length=20, rkey=rkey, redirect_to=tmp),
            WriteOp(addr=dst, data=tmp.to_bytes(8, "little"), length=20,
                    rkey=rkey, data_indirect=True, conditional=True),
        ))
        return result

    result = drive(sim, main())
    assert result.committed
    assert server.space.read(dst, 20) == b"copy me server side!"
    # Response carried only acks: the 20 bytes moved NIC-side.
    assert result[0].value == b""


def test_fetch_add_then_conditional_read(sim, system, drive):
    """FAA as a ticket dispenser chained with a READ of the ticket's
    slot state."""
    server, client, addr, rkey = system
    counter = addr + 2048
    server.space.write_uint(counter, 7)
    def main():
        result = yield from client.execute(chain(
            FetchAddOp(target=counter, delta=1, rkey=rkey),
            ReadOp(addr=counter, length=8, rkey=rkey, conditional=True),
        ))
        return result
    result = drive(sim, main())
    assert int.from_bytes(result[0].value, "little") == 7
    assert int.from_bytes(result[1].value, "little") == 8


def test_scratch_slot_budget_supports_8192_connections():
    """§4.2: 32 B/connection in 256 KB of NIC SRAM -> 8192 connections."""
    assert REDIRECT_SLOT_BYTES == 32
    assert NIC_SRAM_BYTES == 256 * 1024
    assert MAX_CONNECTIONS_PER_NIC == 8192


def test_connection_scratch_exhaustion(sim):
    """With a deliberately tiny SRAM, connects fail once the scratch
    slots run out — the per-connection-state limit §4.2 discusses."""
    fabric = make_fabric(sim, DIRECT, ["client", "server"])
    server = PrismServer(sim, fabric, "server", HardwarePrismBackend,
                         memory_bytes=1 << 20)
    # Shrink the SRAM to 4 slots' worth.
    server.space.sram_bytes = 4 * 32
    server.space.sram._brk = 8  # reset the bump allocator
    server.space.sram.size = 4 * 32 + 8
    for i in range(4):
        server.connect(f"c{i}")
    with pytest.raises(MemoryError_):
        server.connect("one-too-many")


def test_long_mixed_chain(sim, system, drive):
    """A 6-op chain mixing every category executes in order."""
    server, client, addr, rkey = system
    freelist, fl_rkey = server.create_freelist(64, 8)
    tmp = client.sram_slot
    from repro.core.ops import AllocateOp, CasMode, CasOp
    server.space.write_uint(addr + 4096, 1)

    def main():
        result = yield from client.execute(chain(
            WriteOp(addr=addr, data=b"seed", rkey=rkey),
            ReadOp(addr=addr, length=4, rkey=rkey, redirect_to=tmp,
                   conditional=True),
            AllocateOp(freelist=freelist, data=b"payload", rkey=fl_rkey,
                       redirect_to=tmp + 8, conditional=True),
            FetchAddOp(target=addr + 4096, delta=10, rkey=rkey,
                       conditional=True),
            CasOp(target=addr + 4096, data=(99).to_bytes(8, "little"),
                  rkey=rkey, compare_data=(11).to_bytes(8, "little"),
                  conditional=True),
            ReadOp(addr=addr + 4096, length=8, rkey=rkey,
                   conditional=True),
        ))
        return result

    result = drive(sim, main())
    assert all(r.status is OpStatus.OK for r in result)
    assert int.from_bytes(result[5].value, "little") == 99
    # The allocated buffer's address sits in scratch at tmp+8.
    buffer_addr = server.space.read_ptr(tmp + 8)
    assert server.space.read(buffer_addr, 7) == b"payload"
