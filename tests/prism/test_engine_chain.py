"""Chain execution semantics (§3.4): conditionals, NAK aborts, patterns."""

import pytest

from repro.core import AllocateOp, CasMode, CasOp, ReadOp, WriteOp, chain
from repro.prism.engine import OpStatus


def _u(value, width=8):
    return value.to_bytes(width, "little")


def test_unconditional_ops_all_execute(harness):
    result = harness.run_chain(chain(
        WriteOp(addr=harness.base, data=b"a", rkey=harness.rkey),
        WriteOp(addr=harness.base + 1, data=b"b", rkey=harness.rkey),
    ))
    assert all(r.status is OpStatus.OK for r in result)
    assert harness.space.read(harness.base, 2) == b"ab"


def test_conditional_skipped_after_cas_miss(harness):
    harness.space.write(harness.base, _u(5))
    result = harness.run_chain(chain(
        CasOp(target=harness.base, data=_u(1), rkey=harness.rkey,
              compare_data=_u(99)),  # misses
        WriteOp(addr=harness.base + 8, data=b"X", rkey=harness.rkey,
                conditional=True),
    ))
    assert result[0].status is OpStatus.CAS_MISS
    assert result[1].status is OpStatus.SKIPPED
    assert harness.space.read(harness.base + 8, 1) == b"\x00"
    assert not result.committed


def test_unconditional_op_still_runs_after_cas_miss(harness):
    harness.space.write(harness.base, _u(5))
    result = harness.run_chain(chain(
        CasOp(target=harness.base, data=_u(1), rkey=harness.rkey,
              compare_data=_u(99)),
        WriteOp(addr=harness.base + 8, data=b"Y", rkey=harness.rkey),
    ))
    assert result[1].status is OpStatus.OK
    assert harness.space.read(harness.base + 8, 1) == b"Y"


def test_conditional_chains_cascade(harness):
    harness.space.write(harness.base, _u(5))
    result = harness.run_chain(chain(
        CasOp(target=harness.base, data=_u(1), rkey=harness.rkey,
              compare_data=_u(99)),
        WriteOp(addr=harness.base + 8, data=b"X", rkey=harness.rkey,
                conditional=True),
        WriteOp(addr=harness.base + 9, data=b"Y", rkey=harness.rkey,
                conditional=True),
    ))
    assert [r.status for r in result] == [
        OpStatus.CAS_MISS, OpStatus.SKIPPED, OpStatus.SKIPPED]


def test_conditional_after_success_runs(harness):
    harness.space.write(harness.base, _u(5))
    result = harness.run_chain(chain(
        CasOp(target=harness.base, data=_u(6), rkey=harness.rkey,
              mode=CasMode.GT),
        WriteOp(addr=harness.base + 8, data=b"Z", rkey=harness.rkey,
                conditional=True),
    ))
    assert result.committed
    assert harness.space.read(harness.base + 8, 1) == b"Z"


def test_nak_aborts_remainder_even_unconditional(harness):
    """A hard error stops chain processing, like a QP error state."""
    result = harness.run_chain(chain(
        ReadOp(addr=harness.base - 1 << 19, length=8, rkey=harness.rkey),
        WriteOp(addr=harness.base, data=b"N", rkey=harness.rkey),
    ))
    assert result[0].status is OpStatus.NAK
    assert result[1].status is OpStatus.SKIPPED
    assert harness.space.read(harness.base, 1) == b"\x00"
    with pytest.raises(Exception):
        result.raise_on_nak()


def test_out_of_place_update_pattern(harness):
    """§3.5: WRITE tag -> ALLOCATE/redirect -> CAS_GT install, one chain."""
    _, _, buffers = harness.add_freelist(64, 4)
    slot = harness.base            # [tag | ptr] metadata
    tmp = harness.connection.sram_slot
    harness.space.write(slot, _u(3) + _u(0))
    result = harness.run_chain(chain(
        WriteOp(addr=tmp, data=_u(4), rkey=harness.sram_rkey),
        AllocateOp(freelist=1, data=_u(4) + b"new-value", rkey=harness.rkey,
                   redirect_to=tmp + 8, conditional=True),
        CasOp(target=slot, data=tmp.to_bytes(8, "little"),
              rkey=harness.rkey, mode=CasMode.GT,
              compare_mask=(1 << 64) - 1, data_indirect=True,
              operand_width=16, conditional=True),
    ))
    assert result.committed
    tag = harness.space.read_uint(slot)
    ptr = harness.space.read_ptr(slot + 8)
    assert tag == 4
    assert ptr == buffers
    assert harness.space.read(ptr, 17) == _u(4) + b"new-value"


def test_out_of_place_update_loses_to_newer_tag(harness):
    _, _, buffers = harness.add_freelist(64, 4)
    slot = harness.base
    tmp = harness.connection.sram_slot
    harness.space.write(slot, _u(10) + _u(0xCAFE))
    result = harness.run_chain(chain(
        WriteOp(addr=tmp, data=_u(4), rkey=harness.sram_rkey),
        AllocateOp(freelist=1, data=_u(4) + b"stale", rkey=harness.rkey,
                   redirect_to=tmp + 8, conditional=True),
        CasOp(target=slot, data=tmp.to_bytes(8, "little"),
              rkey=harness.rkey, mode=CasMode.GT,
              compare_mask=(1 << 64) - 1, data_indirect=True,
              operand_width=16, conditional=True),
    ))
    assert result[2].status is OpStatus.CAS_MISS
    # Metadata untouched: still tag 10 pointing at 0xCAFE.
    assert harness.space.read_uint(slot) == 10
    assert harness.space.read_ptr(slot + 8) == 0xCAFE


def test_chain_is_not_atomic_between_ops(harness):
    """Only individual CASes are atomic; engine interleaving between
    chain ops is legal (backends insert time there)."""
    result1, _ = harness.run(
        WriteOp(addr=harness.base, data=b"A", rkey=harness.rkey))
    # Interleave a foreign write between two ops of a "chain" by
    # executing ops individually with prev_ok threading.
    op1_result, _ = harness.run(
        WriteOp(addr=harness.base + 1, data=b"B", rkey=harness.rkey))
    foreign, _ = harness.run(
        WriteOp(addr=harness.base, data=b"Z", rkey=harness.rkey))
    op2_result, _ = harness.run(
        ReadOp(addr=harness.base, length=2, rkey=harness.rkey),
        prev_ok=op1_result.successful)
    assert op2_result.value == b"ZB"


def test_skipped_results_count(harness):
    harness.space.write(harness.base, _u(5))
    result = harness.run_chain(chain(
        CasOp(target=harness.base, data=_u(0), rkey=harness.rkey,
              compare_data=_u(1)),
        ReadOp(addr=harness.base, length=8, rkey=harness.rkey,
               conditional=True),
    ))
    assert len(result) == 2
    assert result.last.status is OpStatus.SKIPPED
