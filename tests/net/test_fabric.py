"""Fabric delivery: latency math, routing, port contention."""

import pytest

from repro.net.fabric import Fabric, Host
from repro.net.topology import DIRECT, RACK, make_fabric


def test_duplicate_host_rejected(sim):
    fabric = Fabric(sim, one_way_latency_us=1.0)
    fabric.add_host(Host(sim, "a", 1000))
    with pytest.raises(ValueError):
        fabric.add_host(Host(sim, "a", 1000))


def test_duplicate_service_rejected(sim):
    host = Host(sim, "a", 1000)
    host.register_service("svc", lambda m: None)
    with pytest.raises(ValueError):
        host.register_service("svc", lambda m: None)


def test_unknown_service_raises(sim):
    host = Host(sim, "a", 1000)
    with pytest.raises(KeyError, match="no service"):
        host.handler_for("nope")


def test_loopback_latency_zero(sim):
    fabric = make_fabric(sim, DIRECT, ["a", "b"])
    assert fabric.path_latency_us("a", "a") == 0.0
    assert fabric.path_latency_us("a", "b") > 0


def test_delivery_time_components(sim, drive):
    """tx serialization + propagation + rx serialization."""
    fabric = Fabric(sim, one_way_latency_us=2.0)
    fabric.add_host(Host(sim, "src", bytes_per_us=1000))
    fabric.add_host(Host(sim, "dst", bytes_per_us=1000))
    arrivals = []
    fabric.hosts["dst"].register_service(
        "svc", lambda message: arrivals.append(sim.now))
    def main():
        yield from fabric.send("src", "dst", "svc", "hi", 1000)
        return sim.now
    send_done = drive(sim, main())
    sim.run()
    assert send_done == pytest.approx(1.0)           # 1000B @ 1000 B/us
    assert arrivals == [pytest.approx(1.0 + 2.0 + 1.0)]


def test_sender_released_before_delivery(sim, drive):
    """The sender only occupies its TX port, not the full path."""
    fabric = make_fabric(sim, RACK, ["a", "b"])
    fabric.hosts["b"].register_service("svc", lambda m: None)
    def main():
        yield from fabric.send("a", "b", "svc", None, 512)
        return sim.now
    done = drive(sim, main())
    assert done < fabric.one_way_latency_us  # TX time only
    sim.run()


def test_tx_port_serializes_concurrent_sends(sim):
    fabric = Fabric(sim, one_way_latency_us=0.0)
    fabric.add_host(Host(sim, "src", bytes_per_us=100))
    fabric.add_host(Host(sim, "dst", bytes_per_us=1e9))
    arrivals = []
    fabric.hosts["dst"].register_service(
        "svc", lambda m: arrivals.append(sim.now))
    def sender():
        yield from fabric.send("src", "dst", "svc", None, 500)  # 5 us
    sim.spawn(sender())
    sim.spawn(sender())
    sim.run()
    assert arrivals == [pytest.approx(5.0), pytest.approx(10.0)]


def test_rx_port_serializes_concurrent_receives(sim):
    fabric = Fabric(sim, one_way_latency_us=0.0)
    fabric.add_host(Host(sim, "a", bytes_per_us=1e9))
    fabric.add_host(Host(sim, "b", bytes_per_us=1e9))
    fabric.add_host(Host(sim, "dst", bytes_per_us=100))
    arrivals = []
    fabric.hosts["dst"].register_service(
        "svc", lambda m: arrivals.append(sim.now))
    for src in ("a", "b"):
        sim.spawn(fabric.send(src, "dst", "svc", None, 500))
    sim.run()
    assert arrivals == [pytest.approx(5.0), pytest.approx(10.0)]


def test_messages_delivered_counter(sim):
    fabric = make_fabric(sim, DIRECT, ["a", "b"])
    fabric.hosts["b"].register_service("svc", lambda m: None)
    sim.spawn(fabric.send("a", "b", "svc", None, 64))
    sim.spawn(fabric.send("a", "b", "svc", None, 64))
    sim.run()
    assert fabric.messages_delivered == 2


def test_payload_not_serialized(sim):
    """Payload objects pass through untouched (timing uses size only)."""
    fabric = make_fabric(sim, DIRECT, ["a", "b"])
    payload = {"nested": [1, 2, 3]}
    received = []
    fabric.hosts["b"].register_service(
        "svc", lambda m: received.append(m.payload))
    sim.spawn(fabric.send("a", "b", "svc", payload, 64))
    sim.run()
    assert received[0] is payload
