"""Message envelope basics."""

from repro.net.message import (
    ETHERNET_HEADER_BYTES,
    Message,
    RDMA_HEADER_BYTES,
)


def test_unique_increasing_ids():
    a = Message("x", "y", "svc", None, 10)
    b = Message("x", "y", "svc", None, 10)
    assert b.id > a.id


def test_fields_stored():
    message = Message("src", "dst", "svc", {"k": 1}, 128)
    assert message.src == "src"
    assert message.dst == "dst"
    assert message.service == "svc"
    assert message.payload == {"k": 1}
    assert message.size_bytes == 128
    assert message.send_time is None


def test_header_constants_sane():
    assert ETHERNET_HEADER_BYTES > RDMA_HEADER_BYTES > 0


def test_repr_mentions_route():
    text = repr(Message("a", "b", "s", None, 7))
    assert "a->b/s" in text and "7B" in text
