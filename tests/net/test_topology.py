"""Topology presets match the paper's deployment latencies."""

import pytest

from repro.net.topology import (
    CLUSTER,
    DATACENTER,
    DIRECT,
    PROFILES,
    RACK,
    make_fabric,
)


def test_profiles_ordered_by_latency():
    assert (DIRECT.one_way_latency_us < RACK.one_way_latency_us
            < CLUSTER.one_way_latency_us < DATACENTER.one_way_latency_us)


def test_rack_adds_paper_switch_latency():
    # One Arista ToR switch adds ~0.6 µs round trip (§5, Fig. 2).
    added = 2 * (RACK.one_way_latency_us - DIRECT.one_way_latency_us)
    assert added == pytest.approx(0.6, abs=0.05)


def test_cluster_matches_three_tier_round_trip():
    added = 2 * (CLUSTER.one_way_latency_us - DIRECT.one_way_latency_us)
    assert added == pytest.approx(3.0, abs=0.2)


def test_datacenter_matches_reported_rdma_latency():
    added = 2 * (DATACENTER.one_way_latency_us - DIRECT.one_way_latency_us)
    assert added == pytest.approx(24.0, abs=1.0)


def test_make_fabric_by_name(sim):
    fabric = make_fabric(sim, "rack", ["x", "y"])
    assert fabric.one_way_latency_us == RACK.one_way_latency_us
    assert set(fabric.hosts) == {"x", "y"}


def test_profiles_registry():
    assert set(PROFILES) == {"direct", "rack", "cluster", "datacenter"}


def test_bandwidth_is_40gbe():
    # 40 Gb/s = 5000 bytes/µs
    assert RACK.bytes_per_us == pytest.approx(5000.0)
