"""Request/reply channel: matching, overheads, failures, timeout."""

import pytest

from repro.core.errors import PrismError
from repro.net.port import RequestChannel, send_reply
from repro.net.topology import RACK, make_fabric


def _echo_server(sim, fabric, host="server", fail=False, delay=0.0):
    def handler(message):
        request = message.payload
        def respond():
            if delay:
                yield sim.timeout(delay)
            yield from send_reply(fabric, host, request,
                                  request.body if not fail
                                  else ValueError("server error"),
                                  64, ok=not fail)
        sim.spawn(respond())
    fabric.host(host).register_service("echo", handler)


def test_request_reply_roundtrip(sim, fabric, drive):
    _echo_server(sim, fabric)
    channel = RequestChannel(sim, fabric, "client")
    def main():
        reply = yield from channel.request("server", "echo", "ping", 64)
        return reply
    assert drive(sim, main()) == "ping"


def test_concurrent_requests_matched_by_id(sim, fabric):
    _echo_server(sim, fabric)
    channel = RequestChannel(sim, fabric, "client")
    results = {}
    def requester(tag, size):
        reply = yield from channel.request("server", "echo", tag, size)
        results[tag] = reply
    sim.spawn(requester("big", 5000))
    sim.spawn(requester("small", 64))
    sim.run()
    assert results == {"big": "big", "small": "small"}


def test_two_channels_do_not_cross_talk(sim, fabric):
    _echo_server(sim, fabric)
    a = RequestChannel(sim, fabric, "client")
    b = RequestChannel(sim, fabric, "client")
    results = []
    def requester(channel, tag):
        reply = yield from channel.request("server", "echo", tag, 64)
        results.append(reply)
    sim.spawn(requester(a, "A"))
    sim.spawn(requester(b, "B"))
    sim.run()
    assert sorted(results) == ["A", "B"]


def test_post_and_completion_overheads_counted(sim, fabric, drive):
    _echo_server(sim, fabric)
    cheap = RequestChannel(sim, fabric, "client",
                           post_overhead_us=0.0, completion_overhead_us=0.0)
    def timed(channel):
        start = sim.now
        yield from channel.request("server", "echo", None, 64)
        return sim.now - start
    fast = drive(sim, timed(cheap))
    costly = RequestChannel(sim, fabric, "client",
                            post_overhead_us=1.0, completion_overhead_us=1.0)
    slow = drive(sim, timed(costly))
    assert slow == pytest.approx(fast + 2.0)


def test_error_reply_raises(sim, fabric, drive):
    _echo_server(sim, fabric, fail=True)
    channel = RequestChannel(sim, fabric, "client")
    def main():
        with pytest.raises(ValueError, match="server error"):
            yield from channel.request("server", "echo", None, 64)
        return "handled"
    assert drive(sim, main()) == "handled"


def test_timeout_raises_and_late_reply_dropped(sim, fabric, drive):
    _echo_server(sim, fabric, delay=100.0)
    channel = RequestChannel(sim, fabric, "client")
    def main():
        with pytest.raises(TimeoutError):
            yield from channel.request("server", "echo", None, 64,
                                       timeout_us=10.0)
        return "timed out"
    assert drive(sim, main()) == "timed out"
    sim.run()  # late reply arrives; must be silently dropped
