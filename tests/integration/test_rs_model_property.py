"""Property test: the replicated stores vs a dict model (sequential).

Random GET/PUT streams through the full 3-replica stacks must behave
exactly like a dictionary when issued sequentially; concurrency is
covered by the linearizability suite."""

from hypothesis import given, settings, strategies as st

from repro.apps.blockstore import (
    AbdLockClient,
    AbdLockReplica,
    PrismRsClient,
    PrismRsReplica,
)
from repro.net.topology import RACK, make_fabric
from repro.prism import HardwareRdmaBackend, SoftwarePrismBackend
from repro.sim import Simulator

N_BLOCKS = 4
VALUE = 32

_op = st.one_of(
    st.tuples(st.just("get"), st.integers(0, N_BLOCKS - 1)),
    st.tuples(st.just("put"), st.integers(0, N_BLOCKS - 1),
              st.binary(min_size=VALUE, max_size=VALUE)),
)


def _drive(sim, client, ops, initial):
    model = dict(initial)

    def run():
        for op in ops:
            if op[0] == "get":
                value = yield from client.get(op[1])
                assert value == model[op[1]], (op, value)
            else:
                yield from client.put(op[1], op[2])
                model[op[1]] = op[2]

    sim.run_until_complete(sim.spawn(run()), limit=1e8)


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=15))
def test_prism_rs_matches_dict(ops):
    sim = Simulator()
    fabric = make_fabric(sim, RACK, ["r0", "r1", "r2", "c0"])
    replicas = [PrismRsReplica(sim, fabric, f"r{i}", SoftwarePrismBackend,
                               n_blocks=N_BLOCKS, block_size=VALUE,
                               spare_buffers=len(ops) * 3 + 8)
                for i in range(3)]
    initial = {}
    for block in range(N_BLOCKS):
        value = bytes([block]) * VALUE
        initial[block] = value
        for rep in replicas:
            rep.load(block, value)
    client = PrismRsClient(sim, fabric, "c0", replicas, client_id=1)
    _drive(sim, client, ops, initial)


@settings(max_examples=15, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=10))
def test_abdlock_matches_dict(ops):
    sim = Simulator()
    fabric = make_fabric(sim, RACK, ["r0", "r1", "r2", "c0"])
    replicas = [AbdLockReplica(sim, fabric, f"r{i}", HardwareRdmaBackend,
                               n_blocks=N_BLOCKS, block_size=VALUE)
                for i in range(3)]
    initial = {}
    for block in range(N_BLOCKS):
        value = bytes([block]) * VALUE
        initial[block] = value
        for rep in replicas:
            rep.load(block, value)
    client = AbdLockClient(sim, fabric, "c0", replicas, client_id=1)
    _drive(sim, client, ops, initial)
