"""End-to-end linearizability: concurrent clients against the real
protocol stacks, verified by the Wing & Gong checker.

These are the strongest tests in the suite: they run randomized
concurrent workloads through the full simulated systems (fabric + NIC
model + protocol) and check the *consistency claims the paper makes*.
"""

import pytest

from repro.apps.blockstore import (
    AbdLockClient,
    AbdLockReplica,
    PrismRsClient,
    PrismRsReplica,
)
from repro.apps.kv import PrismKvClient, PrismKvServer
from repro.net.topology import RACK, make_fabric
from repro.prism import HardwareRdmaBackend, SoftwarePrismBackend
from repro.sim import SeededRng, Simulator
from repro.verify import HistoryRecorder, check_linearizable

N_KEYS = 4
N_CLIENTS = 4
OPS_PER_CLIENT = 12


def _run_register_workload(sim, recorder, clients, seed):
    """Each client mixes puts/gets over a tiny hot key space."""
    def worker(index, client):
        rng = SeededRng(seed).fork(index).stream("ops")
        for op_index in range(OPS_PER_CLIENT):
            key = rng.randrange(N_KEYS)
            if rng.random() < 0.5:
                value = f"c{index}.{op_index}".encode().ljust(16, b"_")
                yield from recorder.timed_put(index, client.put, key, value)
            else:
                yield from recorder.timed_get(index, client.get, key)
    processes = [sim.spawn(worker(i, c)) for i, c in enumerate(clients)]
    done = sim.all_of(processes)
    waiter = sim.spawn((lambda: (yield done))())
    sim.run_until_complete(waiter, limit=1e7)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_prism_rs_is_linearizable(seed):
    sim = Simulator()
    hosts = [f"r{i}" for i in range(3)] + [f"c{i}" for i in range(N_CLIENTS)]
    fabric = make_fabric(sim, RACK, hosts)
    replicas = [PrismRsReplica(sim, fabric, f"r{i}", SoftwarePrismBackend,
                               n_blocks=N_KEYS, block_size=16)
                for i in range(3)]
    initial = {}
    for key in range(N_KEYS):
        value = b"init" + bytes([key]) * 12
        initial[key] = value
        for rep in replicas:
            rep.load(key, value)
    clients = [PrismRsClient(sim, fabric, f"c{i}", replicas, client_id=i + 1)
               for i in range(N_CLIENTS)]
    recorder = HistoryRecorder(sim)
    _run_register_workload(sim, recorder, clients, seed)
    assert len(recorder) == N_CLIENTS * OPS_PER_CLIENT
    assert check_linearizable(recorder.invocations,
                              initial_values=initial) == N_KEYS


@pytest.mark.parametrize("seed", [4, 5])
def test_abdlock_is_linearizable(seed):
    sim = Simulator()
    hosts = [f"r{i}" for i in range(3)] + [f"c{i}" for i in range(N_CLIENTS)]
    fabric = make_fabric(sim, RACK, hosts)
    replicas = [AbdLockReplica(sim, fabric, f"r{i}", HardwareRdmaBackend,
                               n_blocks=N_KEYS, block_size=16)
                for i in range(3)]
    initial = {}
    for key in range(N_KEYS):
        value = b"init" + bytes([key]) * 12
        initial[key] = value
        for rep in replicas:
            rep.load(key, value)
    clients = [AbdLockClient(sim, fabric, f"c{i}", replicas,
                             client_id=i + 1, seed=seed * 100 + i)
               for i in range(N_CLIENTS)]
    recorder = HistoryRecorder(sim)
    _run_register_workload(sim, recorder, clients, seed)
    assert check_linearizable(recorder.invocations,
                              initial_values=initial) == N_KEYS


@pytest.mark.parametrize("seed", [6, 7])
def test_prism_kv_gets_are_consistent(seed):
    """PRISM-KV is unreplicated, but its out-of-place updates must give
    every GET a complete, linearizable view."""
    sim = Simulator()
    hosts = ["server"] + [f"c{i}" for i in range(N_CLIENTS)]
    fabric = make_fabric(sim, RACK, hosts)
    server = PrismKvServer(sim, fabric, "server", SoftwarePrismBackend,
                           n_keys=N_KEYS, max_value_bytes=16)
    initial = {}
    for key in range(N_KEYS):
        value = b"init" + bytes([key]) * 12
        initial[key] = value
        server.load(key, value)
    clients = [PrismKvClient(sim, fabric, f"c{i}", server)
               for i in range(N_CLIENTS)]
    recorder = HistoryRecorder(sim)
    _run_register_workload(sim, recorder, clients, seed)
    # Last-writer-wins by version tag is still linearizable: a
    # superseded PUT linearizes immediately before the newer one.
    assert check_linearizable(recorder.invocations,
                              initial_values=initial) == N_KEYS
