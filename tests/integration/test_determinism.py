"""Determinism: identical inputs must produce identical histories.

Every figure in EXPERIMENTS.md is reproducible only because the
simulator is deterministic — same seeds, same event order, same
microsecond timestamps. These tests run whole experiments twice and
require bit-identical results.
"""

from repro.bench.harness import run_point
from repro.workload import YCSB_A, YcsbTransactionalWorkload


def _kv_point():
    result = run_point(
        "kv", "prism-sw",
        lambda i: YCSB_A(500, seed=5, client_id=i),
        n_clients=8, n_keys=500, warmup_us=100, measure_us=600)
    return (result.ops, result.throughput_ops_per_sec,
            result.mean_latency_us, result.p99_latency_us)


def _tx_point():
    result = run_point(
        "tx", "farm-hw",
        lambda i: YcsbTransactionalWorkload(200, keys_per_txn=1, zipf=0.9,
                                            seed=7, client_id=i),
        n_clients=8, n_keys=200, warmup_us=100, measure_us=600)
    return (result.ops, result.aborts, result.mean_latency_us)


def test_kv_experiment_is_deterministic():
    assert _kv_point() == _kv_point()


def test_tx_experiment_with_contention_is_deterministic():
    """Even abort/retry schedules replay exactly (seeded backoff)."""
    assert _tx_point() == _tx_point()


def test_microbenchmarks_are_deterministic():
    from repro.bench.microbench import measure_primitive
    first = measure_primitive("prism-hw", "indirect-read")
    second = measure_primitive("prism-hw", "indirect-read")
    assert first == second
