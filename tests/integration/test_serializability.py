"""End-to-end serializability of PRISM-TX and FaRM under concurrency."""

from itertools import count

import pytest

from repro.apps.tx import FarmClient, FarmServer, PrismTxClient, PrismTxServer
from repro.net.topology import RACK, make_fabric
from repro.prism import HardwareRdmaBackend, SoftwarePrismBackend
from repro.sim import SeededRng, Simulator
from repro.verify.serializability import (
    CommittedTxn,
    check_serializable,
    check_timestamp_serializable,
)

N_KEYS = 6
N_CLIENTS = 5
TXNS_PER_CLIENT = 10


def _drive_workload(sim, clients, seed, value_size):
    """Random 1-2 key RMW transactions per client; returns when done."""
    def worker(index, client):
        rng = SeededRng(seed).fork(index).stream("txn")
        for txn_index in range(TXNS_PER_CLIENT):
            n = rng.choice((1, 2))
            keys = tuple(sorted(rng.sample(range(N_KEYS), n)))
            payload = (f"c{index}t{txn_index}".encode()
                       .ljust(value_size, b"."))
            yield from client.transact(keys, keys, payload)
    processes = [sim.spawn(worker(i, c)) for i, c in enumerate(clients)]
    waiter = sim.spawn((lambda done: (yield done))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e7)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_prism_tx_timestamp_serializable(seed):
    sim = Simulator()
    hosts = ["server"] + [f"c{i}" for i in range(N_CLIENTS)]
    fabric = make_fabric(sim, RACK, hosts)
    server = PrismTxServer(sim, fabric, "server", SoftwarePrismBackend,
                           n_keys=N_KEYS, value_size=16)
    initial = {}
    for key in range(N_KEYS):
        value = b"init" + bytes([48 + key]) * 12
        initial[key] = value
        server.load(key, value)

    committed = []
    ids = count(1)
    clients = []
    for i in range(N_CLIENTS):
        client = PrismTxClient(sim, fabric, f"c{i}", server, client_id=i + 1)
        client.on_commit = (
            lambda ts, reads, writes, start, finish: committed.append(
                CommittedTxn(next(ids), ts, reads, writes, start, finish)))
        clients.append(client)

    _drive_workload(sim, clients, seed, value_size=16)
    assert len(committed) == N_CLIENTS * TXNS_PER_CLIENT
    validated = check_timestamp_serializable(committed, initial)
    assert validated > 0


@pytest.mark.parametrize("seed", [14, 15])
def test_farm_serializable(seed):
    sim = Simulator()
    hosts = ["server"] + [f"c{i}" for i in range(N_CLIENTS)]
    fabric = make_fabric(sim, RACK, hosts)
    server = FarmServer(sim, fabric, "server", HardwareRdmaBackend,
                        n_keys=N_KEYS, value_size=16)
    initial = {}
    for key in range(N_KEYS):
        value = b"init" + bytes([48 + key]) * 12
        initial[key] = value
        server.load(key, value)

    committed = []
    ids = count(1)
    clients = []
    for i in range(N_CLIENTS):
        client = FarmClient(sim, fabric, f"c{i}", server, client_id=i + 1,
                            seed=seed * 10 + i)
        client.on_commit = (
            lambda ts, reads, writes, start, finish: committed.append(
                CommittedTxn(next(ids), ts, reads, writes, start, finish)))
        clients.append(client)

    _drive_workload(sim, clients, seed, value_size=16)
    assert len(committed) == N_CLIENTS * TXNS_PER_CLIENT
    validated = check_serializable(committed, initial, infer_order=True)
    assert validated > 0


def test_prism_tx_serializable_under_extreme_contention():
    """All clients hammer a single key: the nastiest case for OCC."""
    sim = Simulator()
    hosts = ["server"] + [f"c{i}" for i in range(N_CLIENTS)]
    fabric = make_fabric(sim, RACK, hosts)
    server = PrismTxServer(sim, fabric, "server", SoftwarePrismBackend,
                           n_keys=1, value_size=16)
    server.load(0, b"genesis.........")
    committed = []
    ids = count(1)
    clients = []
    for i in range(N_CLIENTS):
        client = PrismTxClient(sim, fabric, f"c{i}", server, client_id=i + 1)
        client.on_commit = (
            lambda ts, reads, writes, start, finish: committed.append(
                CommittedTxn(next(ids), ts, reads, writes, start, finish)))
        clients.append(client)

    def worker(index, client):
        for txn_index in range(8):
            payload = f"c{index}t{txn_index}".encode().ljust(16, b".")
            yield from client.transact((0,), (0,), payload)

    processes = [sim.spawn(worker(i, c)) for i, c in enumerate(clients)]
    waiter = sim.spawn((lambda done: (yield done))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e7)
    assert len(committed) == N_CLIENTS * 8
    check_timestamp_serializable(committed, {0: b"genesis........."})
    # Contention actually happened.
    assert sum(c.aborts for c in clients) > 0
