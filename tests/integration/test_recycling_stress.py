"""Buffer-recycling stress: the free list must sustain a write storm.

PRISM-KV with a deliberately small spare-buffer pool, hammered with
overwrites: the client-batch -> RPC -> daemon -> quiescence-gated
repost pipeline must return buffers fast enough that ALLOCATE never
starves, and recycled buffers must never be handed out while a read
could still observe them (values stay complete)."""

import pytest

from repro.apps.kv import PrismKvClient, PrismKvServer
from repro.net.topology import RACK, make_fabric
from repro.prism import SoftwarePrismBackend
from repro.sim import SeededRng, Simulator

N_KEYS = 16
N_CLIENTS = 4
OPS_PER_CLIENT = 60


def test_write_storm_with_tiny_spare_pool():
    sim = Simulator()
    hosts = ["server"] + [f"c{i}" for i in range(N_CLIENTS)]
    fabric = make_fabric(sim, RACK, hosts)
    server = PrismKvServer(sim, fabric, "server", SoftwarePrismBackend,
                           n_keys=N_KEYS, max_value_bytes=64,
                           spare_buffers=N_CLIENTS * 8,
                           recycler_batch=4)
    for key in range(N_KEYS):
        server.load(key, bytes([key]) * 64)
    clients = [PrismKvClient(sim, fabric, f"c{i}", server, recycle_batch=2)
               for i in range(N_CLIENTS)]
    torn = []

    def worker(index, client):
        rng = SeededRng(index).stream("storm")
        for op in range(OPS_PER_CLIENT):
            key = rng.randrange(N_KEYS)
            if rng.random() < 0.7:
                letter = bytes([65 + (index * 7 + op) % 26])
                yield from client.put(key, letter * 64)
            else:
                value = yield from client.get(key)
                if value is not None and len(set(value)) != 1:
                    torn.append((key, value))

    processes = [sim.spawn(worker(i, c)) for i, c in enumerate(clients)]
    waiter = sim.spawn((lambda d: (yield d))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e8)

    assert torn == []                      # no use-after-free tearing
    assert server.recycler.buffers_recycled > 50  # recycling really ran
    qp = server.prism.freelist(server.freelist_id)
    # Conservation: every popped buffer is either installed (N_KEYS),
    # in the recycling pipeline, or back on the free list.
    assert qp.total_popped - qp.total_posted <= (
        N_KEYS + N_CLIENTS * 8)


def test_free_list_counts_balance_after_quiesce():
    sim = Simulator()
    fabric = make_fabric(sim, RACK, ["server", "c0"])
    server = PrismKvServer(sim, fabric, "server", SoftwarePrismBackend,
                           n_keys=4, max_value_bytes=32, spare_buffers=8,
                           recycler_batch=2)
    for key in range(4):
        server.load(key, bytes([key]) * 32)
    client = PrismKvClient(sim, fabric, "c0", server, recycle_batch=1)

    def main():
        for round_ in range(20):
            yield from client.put(round_ % 4, bytes([round_ % 250]) * 32)
        # Drain the pipeline: flush client batches, then the daemon.
        yield from client.recycler.flush(server.freelist_id)
        yield from server.recycler.flush()

    sim.run_until_complete(sim.spawn(main()), limit=1e8)
    qp = server.prism.freelist(server.freelist_id)
    # The pool holds n_keys + spare = 12 buffers. After the pipeline
    # drains, exactly the 4 installed values are outstanding; every
    # retired buffer is back on the free list.
    pool_size = 4 + 8
    assert len(qp) == pool_size - 4