"""Chaos runs: whole benchmarks under seeded fault plans.

Each test runs a full closed-loop benchmark point under injection and
requires it to (a) complete — ``run_point`` re-raises any orphaned
process failure, so completion alone proves no process died unnoticed
— (b) keep nonzero goodput, and (c) replay deterministically.
"""

from repro.bench.harness import run_point
from repro.workload import YCSB_A, YcsbTransactionalWorkload

_POINT = dict(n_clients=8, n_keys=500, warmup_us=100, measure_us=800)


def _rs(faults):
    return run_point("rs", "prism-sw",
                     lambda i: YCSB_A(500, seed=5, client_id=i),
                     faults=faults, **_POINT)


def _tx(faults):
    return run_point(
        "tx", "prism-sw",
        lambda i: YcsbTransactionalWorkload(500, keys_per_txn=1, zipf=0.5,
                                            seed=7, client_id=i),
        faults=faults, **_POINT)


def _abdlock(faults):
    return run_point("rs", "abdlock-hw",
                     lambda i: YCSB_A(500, seed=5, client_id=i),
                     faults=faults, **_POINT)


class TestDropRecovery:
    def test_rs_survives_message_loss(self):
        result = _rs("seed=3,drop=0.01")
        report = result.extra["faults"]
        assert result.ops > 0
        assert report["goodput_mops"] > 0
        assert report["messages_dropped"] > 0
        assert report["retransmissions"] > 0
        assert report["retries_exhausted"] == 0

    def test_tx_survives_message_loss(self):
        result = _tx("seed=3,drop=0.01")
        report = result.extra["faults"]
        assert result.ops > 0
        assert report["goodput_mops"] > 0
        assert report["messages_dropped"] > 0
        assert report["retries_exhausted"] == 0

    def test_abdlock_survives_message_loss(self):
        """The lock-based ABD flavor must not deadlock on a lost lock
        RPC: settle() waits for every lock op's outcome, and the CAS
        ambiguity rule recognizes a retransmitted lock that already
        took effect (the lock word holds our client id)."""
        result = _abdlock("seed=2,drop=0.01")
        report = result.extra["faults"]
        assert result.ops > 0
        assert report["retries_exhausted"] == 0

    def test_rs_survives_duplication_and_jitter(self):
        result = _rs("seed=5,drop=0.01,dup=0.01,jitter=2")
        report = result.extra["faults"]
        assert result.ops > 0
        assert report["messages_duplicated"] > 0
        assert report["messages_delayed"] > 0


class TestCrashRecovery:
    def test_rs_rides_through_replica_crash(self):
        """ABD with n=3 tolerates f=1: a replica down for a window in
        the middle of the run must not stall the quorum."""
        result = _rs("seed=3,drop=0.005,crash=replica1@400+300")
        report = result.extra["faults"]
        assert result.ops > 0
        assert report["crashes"] == 1
        assert report["recoveries"] == 1
        assert report["crash_drops"] > 0
        assert report["hosts_down"] == []

    def test_tx_rides_through_server_crash_window(self):
        result = _tx("seed=3,crash=server@600+300")
        report = result.extra["faults"]
        assert result.ops > 0
        assert report["crashes"] == 1
        assert report["crash_drops"] > 0


class TestStarvation:
    def test_rs_survives_freelist_starvation(self):
        result = _rs("seed=3,starve=0.5,starve_at=300,starve_hold=400")
        report = result.extra["faults"]
        assert result.ops > 0
        assert report["starved_buffers"] > 0
        assert report["restored_buffers"] == report["starved_buffers"]


class TestChaosDeterminism:
    def _signature(self, result):
        report = result.extra["faults"]
        return (result.ops, result.throughput_ops_per_sec,
                result.mean_latency_us, result.p99_latency_us,
                result.aborts, report["messages_dropped"],
                report["timeouts"], report["retransmissions"])

    def test_rs_chaos_replays_exactly(self):
        spec = "seed=11,drop=0.01,dup=0.005,crash=replica2@500+200"
        assert (self._signature(_rs(spec))
                == self._signature(_rs(spec)))

    def test_tx_chaos_replays_exactly(self):
        spec = "seed=11,drop=0.01"
        assert (self._signature(_tx(spec))
                == self._signature(_tx(spec)))
