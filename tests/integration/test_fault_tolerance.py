"""Replica failure injection: ABD's availability guarantee (§7.1).

"remains available as long as no more than f out of n = 2f + 1
replicas fail" — we crash replicas mid-run and check exactly that.
"""

import pytest

from repro.apps.blockstore import PrismRsClient, PrismRsReplica
from repro.net.topology import RACK, make_fabric
from repro.prism import SoftwarePrismBackend
from repro.sim import SimulationError, Simulator
from repro.verify import HistoryRecorder, check_linearizable

N_KEYS = 3


def _build(sim, n_clients=2):
    hosts = [f"r{i}" for i in range(3)] + [f"c{i}" for i in range(n_clients)]
    fabric = make_fabric(sim, RACK, hosts)
    replicas = [PrismRsReplica(sim, fabric, f"r{i}", SoftwarePrismBackend,
                               n_blocks=N_KEYS, block_size=16)
                for i in range(3)]
    initial = {}
    for key in range(N_KEYS):
        value = b"init" + bytes([key]) * 12
        initial[key] = value
        for rep in replicas:
            rep.load(key, value)
    clients = [PrismRsClient(sim, fabric, f"c{i}", replicas, client_id=i + 1)
               for i in range(n_clients)]
    return fabric, replicas, clients, initial


def test_one_failure_tolerated(sim, drive):
    fabric, replicas, clients, initial = _build(sim)
    client = clients[0]
    replicas[2].prism.fail()

    def main():
        yield from client.put(0, b"survives........")
        value = yield from client.get(0)
        return value

    assert drive(sim, main()) == b"survives........"
    assert replicas[2].prism.requests_dropped > 0


def test_failure_mid_stream(sim):
    """A replica dies between operations; later operations still work
    and the whole history stays linearizable."""
    fabric, replicas, clients, initial = _build(sim, n_clients=2)
    recorder = HistoryRecorder(sim)

    def workload(index, client):
        for op in range(6):
            value = f"c{index}.{op}".encode().ljust(16, b"_")
            yield from recorder.timed_put(index, client.put, op % N_KEYS,
                                          value)
            yield from recorder.timed_get(index, client.get, op % N_KEYS)

    def killer():
        yield sim.timeout(40.0)
        replicas[0].prism.fail()

    processes = [sim.spawn(workload(i, c)) for i, c in enumerate(clients)]
    sim.spawn(killer())
    waiter = sim.spawn((lambda done: (yield done))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e6)
    assert len(recorder) == 24
    check_linearizable(recorder.invocations, initial_values=initial)


def test_two_failures_block_progress(sim):
    """With f+1 = 2 of 3 replicas dead, quorum is unreachable: the
    operation must not complete (and must not return wrong data)."""
    fabric, replicas, clients, initial = _build(sim)
    replicas[0].prism.fail()
    replicas[1].prism.fail()
    client = clients[0]

    def main():
        yield from client.get(0)
        return "completed"

    process = sim.spawn(main())
    with pytest.raises(SimulationError, match="did not complete"):
        sim.run_until_complete(process, limit=10_000)


def test_recovery_restores_availability(sim, drive):
    fabric, replicas, clients, initial = _build(sim)
    replicas[0].prism.fail()
    replicas[1].prism.fail()
    client = clients[0]

    def rescuer():
        yield sim.timeout(50.0)
        replicas[1].prism.recover()

    holder = {}
    def main():
        start = sim.now
        value = yield from client.get(0)
        holder["elapsed"] = sim.now - start
        return value

    sim.spawn(rescuer())
    # The first attempt's requests were dropped; ABD clients do not
    # retransmit in this implementation, so issue the op after recovery.
    def delayed():
        yield sim.timeout(60.0)
        value = yield from main()
        return value

    value = drive(sim, delayed())
    assert value == initial[0]
