"""Property test: PRISM-KV (whole stack) vs a Python dict.

Hypothesis drives random sequential GET/PUT streams through the full
simulated system — fabric, NIC backend, engine, recycler — and the
observable behaviour must match a plain dictionary. Sequential, so the
dict *is* the specification (concurrency is covered by the
linearizability suite)."""

from hypothesis import given, settings, strategies as st

from repro.apps.kv import PrismKvClient, PrismKvServer
from repro.net.topology import DIRECT, make_fabric
from repro.prism import HardwarePrismBackend
from repro.sim import Simulator

N_KEYS = 6

_op = st.one_of(
    st.tuples(st.just("get"), st.integers(0, N_KEYS - 1)),
    st.tuples(st.just("put"), st.integers(0, N_KEYS - 1),
              st.binary(min_size=1, max_size=48)),
)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=30))
def test_kv_matches_dict_model(ops):
    sim = Simulator()
    fabric = make_fabric(sim, DIRECT, ["c0", "server"])
    server = PrismKvServer(sim, fabric, "server", HardwarePrismBackend,
                           n_keys=N_KEYS, max_value_bytes=48,
                           spare_buffers=len(ops) + 8)
    client = PrismKvClient(sim, fabric, "c0", server)
    model = {}
    mismatches = []

    def run():
        for op in ops:
            if op[0] == "get":
                _, key = op
                value = yield from client.get(key)
                if value != model.get(key):
                    mismatches.append((op, value, model.get(key)))
            else:
                _, key, value = op
                yield from client.put(key, value)
                model[key] = value
        # Final read-back of every key.
        for key in range(N_KEYS):
            value = yield from client.get(key)
            if value != model.get(key):
                mismatches.append((("final", key), value, model.get(key)))

    sim.run_until_complete(sim.spawn(run()), limit=1e8)
    assert mismatches == []


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=20),
       use_size_classes=st.booleans())
def test_kv_model_with_size_classes(ops, use_size_classes):
    sim = Simulator()
    fabric = make_fabric(sim, DIRECT, ["c0", "server"])
    server = PrismKvServer(sim, fabric, "server", HardwarePrismBackend,
                           n_keys=N_KEYS, max_value_bytes=48,
                           spare_buffers=len(ops) + 8,
                           size_classes=use_size_classes)
    client = PrismKvClient(sim, fabric, "c0", server)
    model = {}

    def run():
        for op in ops:
            if op[0] == "get":
                value = yield from client.get(op[1])
                assert value == model.get(op[1])
            else:
                yield from client.put(op[1], op[2])
                model[op[1]] = op[2]

    sim.run_until_complete(sim.spawn(run()), limit=1e8)
