"""History recording helpers."""

import pytest

from repro.verify.history import HistoryRecorder, Invocation


def test_overlap_and_precedence():
    a = Invocation(1, "c", "put", "k", 1, start=0, finish=5)
    b = Invocation(2, "c", "get", "k", 1, start=3, finish=8)
    c = Invocation(3, "c", "get", "k", 1, start=6, finish=9)
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert a.precedes(c)
    assert not a.precedes(b)


def test_timed_put_and_get(sim, drive):
    recorder = HistoryRecorder(sim)
    store = {}

    def putter(key, value):
        yield sim.timeout(2)
        store[key] = value

    def getter(key):
        yield sim.timeout(1)
        return store.get(key)

    def main():
        yield from recorder.timed_put("c0", putter, "k", "v1")
        value = yield from recorder.timed_get("c0", getter, "k")
        return value

    assert drive(sim, main()) == "v1"
    assert len(recorder) == 2
    put, get = recorder.invocations
    assert put.kind == "put" and put.finish == 2.0
    assert get.kind == "get" and get.value == "v1"
    assert put.start == 0.0 and get.start == 2.0


def test_for_key_filters():
    recorder = HistoryRecorder.__new__(HistoryRecorder)
    recorder.invocations = [
        Invocation(1, "c", "put", "a", 1, 0, 1),
        Invocation(2, "c", "put", "b", 1, 0, 1),
        Invocation(3, "c", "get", "a", 1, 2, 3),
    ]
    assert len(recorder.for_key("a")) == 2
    assert len(recorder.for_key("b")) == 1


def test_record_assigns_unique_ids(sim):
    recorder = HistoryRecorder(sim)
    first = recorder.record("c", "get", "k", None, 0, 1)
    second = recorder.record("c", "get", "k", None, 1, 2)
    assert second.op_id > first.op_id
