"""The checkers themselves must be trustworthy: test them on known
linearizable / non-linearizable / serializable / non-serializable
histories before trusting what they say about the systems."""

import pytest

from repro.verify.history import Invocation
from repro.verify.linearizability import (
    LinearizabilityViolation,
    check_linearizable,
)
from repro.verify.serializability import (
    CommittedTxn,
    SerializabilityViolation,
    check_serializable,
    check_timestamp_serializable,
)


def inv(op_id, kind, key, value, start, finish, client="c"):
    return Invocation(op_id, client, kind, key, value, start, finish)


class TestLinearizability:
    def test_sequential_history_ok(self):
        history = [
            inv(1, "put", "k", "a", 0, 1),
            inv(2, "get", "k", "a", 2, 3),
            inv(3, "put", "k", "b", 4, 5),
            inv(4, "get", "k", "b", 6, 7),
        ]
        assert check_linearizable(history) == 1

    def test_stale_read_rejected(self):
        history = [
            inv(1, "put", "k", "a", 0, 1),
            inv(2, "put", "k", "b", 2, 3),
            inv(3, "get", "k", "a", 4, 5),  # stale: b already installed
        ]
        with pytest.raises(LinearizabilityViolation):
            check_linearizable(history)

    def test_concurrent_put_get_either_value_ok(self):
        base = [inv(1, "put", "k", "a", 0, 1)]
        overlap_old = base + [
            inv(2, "put", "k", "b", 2, 6),
            inv(3, "get", "k", "a", 3, 4),  # read before concurrent put
        ]
        overlap_new = base + [
            inv(4, "put", "k", "b", 2, 6),
            inv(5, "get", "k", "b", 3, 4),  # or after it
        ]
        assert check_linearizable(overlap_old) == 1
        assert check_linearizable(overlap_new) == 1

    def test_new_then_old_rejected(self):
        """Two sequential reads during one put cannot go new -> old."""
        history = [
            inv(1, "put", "k", "a", 0, 1),
            inv(2, "put", "k", "b", 2, 10),
            inv(3, "get", "k", "b", 3, 4),
            inv(4, "get", "k", "a", 5, 6),  # went back in time
        ]
        with pytest.raises(LinearizabilityViolation):
            check_linearizable(history)

    def test_initial_value_read(self):
        history = [inv(1, "get", "k", "init", 0, 1)]
        assert check_linearizable(history, initial_values={"k": "init"}) == 1
        with pytest.raises(LinearizabilityViolation):
            check_linearizable(history, initial_values={"k": "other"})

    def test_keys_are_independent(self):
        history = [
            inv(1, "put", "x", "a", 0, 1),
            inv(2, "put", "y", "b", 0, 1),
            inv(3, "get", "x", "a", 2, 3),
            inv(4, "get", "y", "b", 2, 3),
        ]
        assert check_linearizable(history) == 2

    def test_real_time_order_enforced_between_writes(self):
        history = [
            inv(1, "put", "k", "a", 0, 1),
            inv(2, "put", "k", "b", 2, 3),   # strictly after
            inv(3, "get", "k", "a", 10, 11),  # must see b
        ]
        with pytest.raises(LinearizabilityViolation):
            check_linearizable(history)

    def test_larger_concurrent_history(self):
        # Five writers overlap; a read during the melee may see any of
        # them; a read after everything must see some write (not init).
        history = [inv(i, "put", "k", f"v{i}", 0, 10) for i in range(1, 6)]
        history.append(inv(6, "get", "k", "v3", 5, 6))
        history.append(inv(7, "get", "k", "v5", 20, 21))
        assert check_linearizable(history) == 1


class TestSerializability:
    def test_timestamp_order_valid(self):
        txns = [
            CommittedTxn(1, 10, reads={"k": "init"}, writes={"k": "a"},
                         start=0, finish=1),
            CommittedTxn(2, 20, reads={"k": "a"}, writes={"k": "b"},
                         start=2, finish=3),
        ]
        assert check_timestamp_serializable(
            txns, initial_values={"k": "init"}) == 2

    def test_bad_read_rejected(self):
        txns = [
            CommittedTxn(1, 10, reads={}, writes={"k": "a"}),
            CommittedTxn(2, 20, reads={"k": "init"}, writes={"k": "b"}),
        ]
        with pytest.raises(SerializabilityViolation):
            check_timestamp_serializable(txns, {"k": "init"})

    def test_duplicate_timestamps_rejected(self):
        txns = [CommittedTxn(1, 5, {}, {"k": 1}),
                CommittedTxn(2, 5, {}, {"k": 2})]
        with pytest.raises(SerializabilityViolation):
            check_timestamp_serializable(txns, {})

    def test_external_consistency(self):
        """Conflicting non-overlapping txns must be timestamp-ordered
        consistently with real time."""
        txns = [
            CommittedTxn(1, 20, reads={}, writes={"k": "a"},
                         start=0, finish=1),
            CommittedTxn(2, 10, reads={}, writes={"k": "b"},
                         start=5, finish=6),  # later in time, earlier TS
        ]
        with pytest.raises(SerializabilityViolation):
            check_timestamp_serializable(txns, {})

    def test_non_conflicting_timestamps_free(self):
        txns = [
            CommittedTxn(1, 20, reads={}, writes={"x": "a"},
                         start=0, finish=1),
            CommittedTxn(2, 10, reads={}, writes={"y": "b"},
                         start=5, finish=6),
        ]
        assert check_timestamp_serializable(txns, {}) == 0

    def test_inferred_order_valid_chain(self):
        txns = [
            CommittedTxn(1, None, reads={"k": "init"}, writes={"k": "a"},
                         start=0),
            CommittedTxn(2, None, reads={"k": "a"}, writes={"k": "b"},
                         start=1),
            CommittedTxn(3, None, reads={"k": "b"}, writes={"k": "c"},
                         start=2),
        ]
        assert check_serializable(txns, {"k": "init"}, infer_order=True) == 3

    def test_inferred_order_cycle_rejected(self):
        txns = [
            CommittedTxn(1, None, reads={"x": "b1"}, writes={"y": "a1"},
                         start=0),
            CommittedTxn(2, None, reads={"y": "a1"}, writes={"x": "b1"},
                         start=0),
        ]
        with pytest.raises(SerializabilityViolation):
            check_serializable(txns, {}, infer_order=True)
