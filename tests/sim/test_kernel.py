"""Kernel semantics: events, processes, time, combinators."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Simulator
from repro.sim.events import AllOf, AnyOf


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock(sim, drive):
    def proc():
        yield sim.timeout(5.5)
        return sim.now
    assert drive(sim, proc()) == 5.5


def test_zero_timeout_runs_same_timestamp(sim, drive):
    def proc():
        yield sim.timeout(0)
        return sim.now
    assert drive(sim, proc()) == 0.0


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_timeout_value_delivered(sim, drive):
    def proc():
        value = yield sim.timeout(1, value="payload")
        return value
    assert drive(sim, proc()) == "payload"


def test_timeouts_fire_in_order(sim):
    order = []
    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)
    sim.spawn(waiter(3, "c"))
    sim.spawn(waiter(1, "a"))
    sim.spawn(waiter(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo_order(sim):
    order = []
    def waiter(tag):
        yield sim.timeout(1)
        order.append(tag)
    for tag in range(5):
        sim.spawn(waiter(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value(sim, drive):
    def proc():
        yield sim.timeout(1)
        return 42
    assert drive(sim, proc()) == 42


def test_process_is_event_others_can_wait_on(sim, drive):
    def child():
        yield sim.timeout(2)
        return "done"
    def parent():
        value = yield sim.spawn(child())
        return (value, sim.now)
    assert drive(sim, parent()) == ("done", 2.0)


def test_event_succeed_wakes_waiter(sim, drive):
    gate = sim.event()
    def opener():
        yield sim.timeout(3)
        gate.succeed("opened")
    def waiter():
        value = yield gate
        return (value, sim.now)
    sim.spawn(opener())
    assert drive(sim, waiter()) == ("opened", 3.0)


def test_event_fail_raises_in_waiter(sim, drive):
    gate = sim.event()
    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))
    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield gate
        return "handled"
    sim.spawn(failer())
    assert drive(sim, waiter()) == "handled"


def test_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_fail_requires_exception(sim):
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")


def test_callback_after_processed_still_fires(sim):
    event = sim.event()
    event.succeed("x")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["x"]


def test_unhandled_process_exception_propagates(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("unseen failure")
    sim.spawn(bad())
    with pytest.raises(RuntimeError, match="unseen failure"):
        sim.run()


def test_observed_process_exception_does_not_crash_run(sim, drive):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("seen failure")
    def observer():
        with pytest.raises(RuntimeError, match="seen failure"):
            yield sim.spawn(bad())
        return "ok"
    assert drive(sim, observer()) == "ok"


def test_yielding_non_event_is_an_error(sim):
    def bad():
        yield 123
    sim.spawn(bad())
    with pytest.raises(SimulationError, match="only yield Event"):
        sim.run()


def test_interrupt_reaches_process(sim, drive):
    def sleeper():
        try:
            yield sim.timeout(100)
            return "overslept"
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)
    def interrupter():
        process = sim.spawn(sleeper())
        yield sim.timeout(2)
        process.interrupt("wake up")
        value = yield process
        return value
    assert drive(sim, interrupter()) == ("interrupted", "wake up", 2.0)


def test_interrupt_finished_process_is_noop(sim, drive):
    def quick():
        yield sim.timeout(1)
        return "fin"
    def main():
        process = sim.spawn(quick())
        yield sim.timeout(5)
        process.interrupt()  # already done; must not blow up
        value = yield process
        return value
    assert drive(sim, main()) == "fin"


def test_run_until_limit_stops_clock(sim):
    def forever():
        while True:
            yield sim.timeout(10)
    sim.spawn(forever())
    sim.run(until=35)
    assert sim.now == 35


def test_run_until_complete_with_perpetual_daemon(sim):
    """A daemon must not keep run_until_complete alive forever."""
    def daemon():
        while True:
            yield sim.timeout(1)
    def task():
        yield sim.timeout(7)
        return "done"
    sim.spawn(daemon())
    process = sim.spawn(task())
    assert sim.run_until_complete(process, limit=100) == "done"


def test_run_until_complete_incomplete_raises(sim):
    def slow():
        yield sim.timeout(1000)
    with pytest.raises(SimulationError, match="did not complete"):
        sim.run_until_complete(sim.spawn(slow()), limit=10)


def test_any_of_first_wins(sim, drive):
    def main():
        index, value = yield sim.any_of(
            [sim.timeout(5, "slow"), sim.timeout(2, "fast")])
        return (index, value, sim.now)
    assert drive(sim, main()) == (1, "fast", 2.0)


def test_all_of_collects_in_order(sim, drive):
    def main():
        values = yield sim.all_of(
            [sim.timeout(5, "a"), sim.timeout(2, "b"), sim.timeout(4, "c")])
        return (values, sim.now)
    assert drive(sim, main()) == (["a", "b", "c"], 5.0)


def test_all_of_empty_succeeds_immediately(sim, drive):
    def main():
        values = yield sim.all_of([])
        return values
    assert drive(sim, main()) == []


def test_any_of_empty_rejected(sim):
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_all_of_failure_propagates(sim, drive):
    doomed = sim.event()
    def failer():
        yield sim.timeout(1)
        doomed.fail(KeyError("nope"))
    def main():
        with pytest.raises(KeyError):
            yield sim.all_of([sim.timeout(5), doomed])
        return sim.now
    sim.spawn(failer())
    assert drive(sim, main()) == 1.0


def test_call_at_runs_callable(sim):
    seen = []
    sim.call_at(4.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.0]


def test_call_at_past_rejected(sim):
    def advance():
        yield sim.timeout(10)
        with pytest.raises(SimulationError):
            sim.call_at(5, lambda: None)
        return True
    process = sim.spawn(advance())
    assert sim.run_until_complete(process)


def test_nested_yield_from_subgenerators(sim, drive):
    def inner():
        yield sim.timeout(2)
        return 10
    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b, sim.now
    assert drive(sim, outer()) == (20, 4.0)
