"""Resource, Store, and BandwidthPipe semantics."""

import pytest

from repro.sim import BandwidthPipe, Resource, SimulationError, Store


class TestResource:
    def test_capacity_validated(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_immediate_grant_under_capacity(self, sim, drive):
        resource = Resource(sim, capacity=2)
        def main():
            yield resource.acquire()
            yield resource.acquire()
            return resource.in_use
        assert drive(sim, main()) == 2

    def test_release_without_acquire_rejected(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim).release()

    def test_fifo_queueing(self, sim):
        resource = Resource(sim, capacity=1)
        order = []
        def worker(tag, hold):
            yield resource.acquire()
            order.append(("start", tag, sim.now))
            yield sim.timeout(hold)
            resource.release()
        sim.spawn(worker("a", 5))
        sim.spawn(worker("b", 5))
        sim.spawn(worker("c", 5))
        sim.run()
        assert order == [("start", "a", 0.0), ("start", "b", 5.0),
                         ("start", "c", 10.0)]

    def test_queue_length_visible(self, sim):
        resource = Resource(sim, capacity=1)
        lengths = []
        def holder():
            yield resource.acquire()
            yield sim.timeout(10)
            lengths.append(resource.queue_length)
            resource.release()
        def waiter():
            yield resource.acquire()
            resource.release()
        sim.spawn(holder())
        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.run()
        assert lengths == [2]

    def test_utilization_accounting(self, sim, drive):
        resource = Resource(sim, capacity=1)
        def main():
            yield from resource.occupy(30)
            yield sim.timeout(70)
            return resource.utilization(100)
        assert drive(sim, main()) == pytest.approx(0.3)

    def test_occupy_releases_on_interrupt(self, sim, drive):
        from repro.sim import Interrupt
        resource = Resource(sim, capacity=1)
        def holder():
            try:
                yield from resource.occupy(100)
            except Interrupt:
                pass
        def main():
            process = sim.spawn(holder())
            yield sim.timeout(5)
            process.interrupt("cancel")
            yield process
            return resource.in_use
        assert drive(sim, main()) == 0

    def test_multi_capacity_parallelism(self, sim):
        resource = Resource(sim, capacity=3)
        finishes = []
        def worker(tag):
            yield from resource.occupy(10)
            finishes.append((tag, sim.now))
        for tag in range(6):
            sim.spawn(worker(tag))
        sim.run()
        assert [t for _, t in finishes] == [10, 10, 10, 20, 20, 20]


class TestStore:
    def test_put_then_get(self, sim, drive):
        store = Store(sim)
        store.put("x")
        def main():
            value = yield store.get()
            return value
        assert drive(sim, main()) == "x"

    def test_get_blocks_until_put(self, sim, drive):
        store = Store(sim)
        def producer():
            yield sim.timeout(4)
            store.put("late")
        def main():
            value = yield store.get()
            return (value, sim.now)
        sim.spawn(producer())
        assert drive(sim, main()) == ("late", 4.0)

    def test_fifo_item_order(self, sim, drive):
        store = Store(sim)
        for item in ("a", "b", "c"):
            store.put(item)
        def main():
            first = yield store.get()
            second = yield store.get()
            return first, second
        assert drive(sim, main()) == ("a", "b")

    def test_getters_served_fifo(self, sim):
        store = Store(sim)
        got = []
        def getter(tag):
            value = yield store.get()
            got.append((tag, value))
        sim.spawn(getter(1))
        sim.spawn(getter(2))
        def producer():
            yield sim.timeout(1)
            store.put("first")
            store.put("second")
        sim.spawn(producer())
        sim.run()
        assert got == [(1, "first"), (2, "second")]

    def test_try_get_nonblocking(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(9)
        assert store.try_get() == 9
        assert len(store) == 0


class TestBandwidthPipe:
    def test_bandwidth_positive(self, sim):
        with pytest.raises(SimulationError):
            BandwidthPipe(sim, 0)

    def test_serialization_time(self, sim):
        pipe = BandwidthPipe(sim, bytes_per_us=1000, per_message_us=0.5)
        assert pipe.serialization_time(2000) == pytest.approx(2.5)

    def test_transmissions_serialize(self, sim):
        pipe = BandwidthPipe(sim, bytes_per_us=100)
        finishes = []
        def sender(tag):
            yield from pipe.transmit(500)  # 5 us each
            finishes.append((tag, sim.now))
        sim.spawn(sender("a"))
        sim.spawn(sender("b"))
        sim.run()
        assert finishes == [("a", 5.0), ("b", 10.0)]

    def test_counters(self, sim, drive):
        pipe = BandwidthPipe(sim, bytes_per_us=100)
        def main():
            yield from pipe.transmit(300)
            yield from pipe.transmit(200)
            return pipe.bytes_sent, pipe.messages_sent
        assert drive(sim, main()) == (500, 2)
