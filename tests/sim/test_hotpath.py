"""Hot-path overhaul regressions: timer withdrawal, orphan notes.

These tests pin the two event-loop bugfixes that rode along with the
kernel optimization pass (they fail on the pre-overhaul kernel):

* ``with_timeout`` / ``any_of`` must *withdraw* losing timers from the
  heap instead of leaving them to fire into the void at their (now
  meaningless) deadlines — at 10⁵ clients each doing timed ops, the
  leak turns the heap O(total ops) instead of O(in-flight).
* ``_raise_orphan_failures`` must surface *every* unobserved process
  failure, not just the first: the rest ride along as notes.
"""

import pytest

from repro.sim import Simulator


def _live_queue_entries(sim):
    """Heap entries that are not tombstoned cancelled timers."""
    return sum(1 for _, _, obj in sim._queue
               if not getattr(obj, "cancelled", False))


class TestAbandonedTimerWithdrawal:
    N = 500

    def test_with_timeout_queue_stays_o_in_flight(self):
        sim = Simulator()

        def main():
            for _ in range(self.N):
                # The guarded event (a 1 µs timer) always beats the
                # 1000 µs budget, so every iteration abandons a timer.
                yield from sim.with_timeout(sim.timeout(1.0), 1000.0)

        sim.run_until_complete(sim.spawn(main()))
        # Old kernel: ~N losing timers sit in the heap until their
        # deadlines (never reached here). New kernel: each is
        # tombstoned on loss and compacted away in bulk, so the queue
        # stays O(in-flight), far below N.
        assert _live_queue_entries(sim) <= 2
        assert len(sim._queue) < self.N // 2

    def test_any_of_withdraws_losing_timers(self):
        sim = Simulator()

        def main():
            for _ in range(self.N):
                yield sim.any_of([sim.timeout(1.0), sim.timeout(500.0),
                                  sim.timeout(900.0)])

        sim.run_until_complete(sim.spawn(main()))
        assert _live_queue_entries(sim) <= 2
        assert len(sim._queue) < self.N

    def test_losing_timer_never_fires(self):
        sim = Simulator()
        seen = []
        timers = []

        def main():
            timers.append(sim.timeout(1.0, "fast"))
            timers.append(sim.timeout(50.0, "slow"))
            index, _ = yield sim.any_of(timers)
            seen.append(index)

        sim.spawn(main())
        sim.run(until=100.0)
        assert seen == [0]
        # The loser is withdrawn on loss — cancelled, never triggered —
        # rather than firing into the void at t=50.
        fast, slow = timers
        assert fast.triggered
        assert slow.cancelled
        assert not slow.triggered
        assert len(sim._queue) == 0


class TestOrphanFailureNotes:
    def test_two_crashing_daemons_both_surface(self):
        sim = Simulator()

        def daemon(message, delay):
            yield sim.timeout(delay)
            raise RuntimeError(message)

        sim.spawn(daemon("first failure", 1.0), name="daemon-a")
        sim.spawn(daemon("second failure", 1.0), name="daemon-b")
        with pytest.raises(RuntimeError, match="first failure") as info:
            sim.run(until=10.0)
        notes = getattr(info.value, "__notes__", [])
        assert any("daemon-b" in note and "second failure" in note
                   for note in notes), notes

    def test_single_orphan_has_no_notes(self):
        sim = Simulator()

        def daemon():
            yield sim.timeout(1.0)
            raise ValueError("lonely")

        sim.spawn(daemon(), name="solo")
        with pytest.raises(ValueError, match="lonely") as info:
            sim.run(until=10.0)
        assert not getattr(info.value, "__notes__", [])

    def test_observed_failure_not_reported_as_orphan(self):
        sim = Simulator()

        def crasher():
            yield sim.timeout(1.0)
            raise RuntimeError("seen")

        def watcher(process):
            try:
                yield process
            except RuntimeError:
                return "caught"

        crash = sim.spawn(crasher(), name="crasher")
        watch = sim.spawn(watcher(crash), name="watcher")
        assert sim.run_until_complete(watch) == "caught"
