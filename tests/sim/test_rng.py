"""Determinism of the seeded RNG substreams."""

from repro.sim.rng import SeededRng


def test_same_seed_same_stream():
    a = SeededRng(7).stream("clients")
    b = SeededRng(7).stream("clients")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    rng = SeededRng(7)
    a = [rng.stream("a").random() for _ in range(5)]
    b = [rng.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    rng = SeededRng(0)
    assert rng.stream("x") is rng.stream("x")


def test_adding_stream_does_not_perturb_existing():
    rng1 = SeededRng(3)
    s = rng1.stream("main")
    first = s.random()
    rng2 = SeededRng(3)
    rng2.stream("other")  # extra stream created first
    assert rng2.stream("main").random() == first


def test_fork_children_differ():
    root = SeededRng(1)
    children = [root.fork(i).stream("w").random() for i in range(10)]
    assert len(set(children)) == 10


def test_fork_deterministic():
    assert (SeededRng(5).fork(3).stream("x").random()
            == SeededRng(5).fork(3).stream("x").random())
