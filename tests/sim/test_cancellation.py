"""Interrupt/timeout cancellation: no leaked slots, no lost items.

These pin the kernel bugs that blocked the fault-injection layer:
an interrupted ``acquire()`` used to leak a capacity slot, an
abandoned ``Store.get`` swallowed the item handed to it, a stale
queued wake-up could resume a process at the wrong yield point, and
``run_until_complete`` left ``now`` at the last executed event when
the limit tripped.
"""

import pytest

from repro.sim import SimulationError, Simulator, TimeoutExpired
from repro.sim.events import Interrupt
from repro.sim.resources import Resource, Store


class TestResourceCancellation:
    def test_interrupted_queued_waiters_conserve_capacity(self, sim, drive):
        resource = Resource(sim, capacity=2)

        def holder():
            yield from resource.occupy(10)

        outcomes = []

        def waiter():
            try:
                yield resource.acquire()
            except Interrupt:
                outcomes.append("interrupted")
                return
            outcomes.append("acquired")
            resource.release()

        sim.spawn(holder())
        sim.spawn(holder())
        victims = [sim.spawn(waiter()) for _ in range(3)]

        def killer():
            yield sim.timeout(5)
            for victim in victims:
                victim.interrupt("chaos")

        sim.spawn(killer())
        sim.run()
        assert outcomes == ["interrupted"] * 3
        assert resource.in_use == 0
        assert resource.queue_length == 0

        # Every slot is still usable afterwards.
        def reuse():
            yield resource.acquire()
            yield resource.acquire()
            held = resource.in_use
            resource.release()
            resource.release()
            return held

        assert drive(sim, reuse()) == 2

    def test_interrupt_races_grant_in_same_step(self, sim):
        """A slot granted to a waiter killed in the same kernel step is
        handed back, not stranded on the dead process forever."""
        resource = Resource(sim, capacity=1)

        def holder():
            yield from resource.occupy(10)

        def waiter():
            try:
                yield resource.acquire()
            except Interrupt:
                return "interrupted"
            resource.release()
            return "acquired"

        sim.spawn(holder())
        victim = sim.spawn(waiter())

        def killer():
            # Fires at t=10 in the same step as the holder's release:
            # the release grants the slot to the victim, then the
            # interrupt lands before the victim consumes it.
            yield sim.timeout(10)
            victim.interrupt("chaos")

        sim.spawn(killer())
        sim.run()
        assert victim.value == "interrupted"
        assert resource.in_use == 0

    def test_occupy_interrupted_while_holding_releases(self, sim):
        resource = Resource(sim, capacity=1)

        def worker():
            try:
                yield from resource.occupy(100)
            except Interrupt:
                pass

        victim = sim.spawn(worker())

        def killer():
            yield sim.timeout(5)
            victim.interrupt()

        sim.spawn(killer())
        sim.run()
        assert resource.in_use == 0


class TestStoreCancellation:
    def test_cancelled_blocked_getter_leaves_queue(self, sim):
        store = Store(sim)
        event = store.get()
        event.cancel()
        store.put("x")
        sim.run()
        assert store.try_get() == "x"

    def test_cancel_after_immediate_grant_repossesses_item(self, sim):
        store = Store(sim)
        store.put("x")
        event = store.get()  # succeeds immediately
        event.cancel()
        assert len(store) == 1
        assert store.try_get() == "x"

    def test_interrupt_races_put_in_same_step(self, sim):
        """An item handed to a getter killed in the same kernel step
        goes to the next live getter instead of vanishing."""
        store = Store(sim)
        got = []

        def getter(tag):
            try:
                item = yield store.get()
            except Interrupt:
                return
            got.append((tag, item))

        first = sim.spawn(getter("a"))
        sim.spawn(getter("b"))

        def killer():
            yield sim.timeout(5)
            first.interrupt("chaos")
            store.put("x")

        sim.spawn(killer())
        sim.run()
        assert got == [("b", "x")]

    def test_items_conserved_under_interrupt_storm(self, sim):
        store = Store(sim)
        taken = []

        def getter():
            try:
                item = yield store.get()
            except Interrupt:
                return
            taken.append(item)

        victims = [sim.spawn(getter()) for _ in range(4)]

        def chaos():
            yield sim.timeout(1)
            victims[0].interrupt()
            victims[2].interrupt()
            for item in ("p", "q"):
                store.put(item)

        sim.spawn(chaos())
        sim.run()
        # Two live getters, two items: nothing lost, nothing left over.
        assert sorted(taken) == ["p", "q"]
        assert len(store) == 0


class TestWithTimeout:
    def test_returns_value_when_event_wins(self, sim, drive):
        def main():
            value = yield from sim.with_timeout(
                sim.timeout(5, value="v"), 10)
            return value, sim.now

        assert drive(sim, main()) == ("v", 5.0)

    def test_raises_timeout_expired(self, sim, drive):
        def main():
            try:
                yield from sim.with_timeout(sim.event(), 7, what="nothing")
            except TimeoutExpired as exc:
                return exc.timeout_us, exc.what, sim.now

        assert drive(sim, main()) == (7, "nothing", 7.0)

    def test_timeout_expired_is_a_timeout_error(self):
        assert issubclass(TimeoutExpired, TimeoutError)

    def test_timeout_withdraws_resource_claim(self, sim):
        resource = Resource(sim, capacity=1)

        def holder():
            yield from resource.occupy(20)

        queue_after = []

        def impatient():
            try:
                yield from sim.with_timeout(resource.acquire(), 5)
            except TimeoutExpired:
                queue_after.append(resource.queue_length)

        sim.spawn(holder())
        sim.spawn(impatient())
        sim.run()
        assert queue_after == [0]
        assert resource.in_use == 0

    def test_timeout_withdraws_store_claim(self, sim):
        store = Store(sim)

        def impatient():
            try:
                yield from sim.with_timeout(store.get(), 5)
            except TimeoutExpired:
                pass

        sim.spawn(impatient())

        def late_producer():
            yield sim.timeout(10)
            store.put("x")

        sim.spawn(late_producer())
        sim.run()
        # The abandoned getter must not consume the late item.
        assert store.try_get() == "x"

    def test_rejects_non_events(self, sim, drive):
        def main():
            yield from sim.with_timeout("not an event", 5)

        with pytest.raises(SimulationError):
            drive(sim, main())


class TestSleepUntil:
    def test_future_time(self, sim, drive):
        def main():
            yield sim.sleep_until(42.0)
            return sim.now

        assert drive(sim, main()) == 42.0

    def test_past_time_fires_now(self, sim, drive):
        def main():
            yield sim.timeout(10)
            yield sim.sleep_until(3.0)
            return sim.now

        assert drive(sim, main()) == 10.0


class TestStaleResumeGuard:
    def test_queued_stale_wakeup_does_not_resume_twice(self, sim):
        """An interrupt landing after a processed event queued its
        resume callback must not let the stale callback drive the
        generator at the *next* yield point."""
        done = sim.event()
        done.succeed("stale")
        log = []

        def victim():
            try:
                yield sim.timeout(1)
                value = yield done  # processed: resume goes via queue
                log.append(("direct", value))
            except Interrupt:
                log.append("interrupted")
            value = yield sim.timeout(3, value="clean")
            log.append(("after", value))

        def adversary():
            yield sim.timeout(1)
            proc.interrupt("bang")

        # Adversary first so its interrupt is queued between the stale
        # callback's enqueue and execution.
        sim.spawn(adversary())
        proc = sim.spawn(victim())
        sim.run()
        assert log == ["interrupted", ("after", "clean")]


class TestRunUntilCompleteLimit:
    def test_limit_trip_advances_clock_to_limit(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(100)

        def never_done():
            yield sim.event()

        proc = sim.spawn(never_done())
        sim.spawn(forever())
        with pytest.raises(SimulationError):
            sim.run_until_complete(proc, limit=250)
        assert sim.now == 250
