"""Latency recorder and throughput meter."""

import math

import pytest

from repro.sim.stats import LatencyRecorder, ThroughputMeter, summarize


class TestLatencyRecorder:
    def test_warmup_filtering(self):
        recorder = LatencyRecorder(warmup_until=100)
        recorder.record(50, 1.0)   # during warmup: dropped
        recorder.record(150, 2.0)
        assert recorder.samples == [2.0]

    def test_mean(self):
        recorder = LatencyRecorder()
        for latency in (1.0, 2.0, 3.0):
            recorder.record(0, latency)
        assert recorder.mean() == pytest.approx(2.0)

    def test_empty_stats_are_nan(self):
        recorder = LatencyRecorder()
        assert math.isnan(recorder.mean())
        assert math.isnan(recorder.percentile(50))

    def test_median_odd(self):
        recorder = LatencyRecorder()
        for latency in (5.0, 1.0, 3.0):
            recorder.record(0, latency)
        assert recorder.median() == pytest.approx(3.0)

    def test_percentile_interpolates(self):
        recorder = LatencyRecorder()
        for latency in (0.0, 10.0):
            recorder.record(0, latency)
        assert recorder.percentile(25) == pytest.approx(2.5)

    def test_p99_near_max(self):
        recorder = LatencyRecorder()
        for i in range(100):
            recorder.record(0, float(i))
        assert 97.0 <= recorder.p99() <= 99.0

    def test_single_sample_percentiles(self):
        recorder = LatencyRecorder()
        recorder.record(0, 7.0)
        assert recorder.percentile(0) == 7.0
        assert recorder.percentile(100) == 7.0


class TestThroughputMeter:
    def test_ops_per_second(self):
        meter = ThroughputMeter()
        meter.record(0.0)
        for t in (10.0, 20.0, 30.0):
            meter.record(t)
        # 4 completions over 30 us
        assert meter.ops_per_sec() == pytest.approx(4 / 30 * 1e6)

    def test_warmup_excluded(self):
        meter = ThroughputMeter(warmup_until=100)
        meter.record(50)
        meter.record(150)
        meter.record(250)
        assert meter.completed == 2

    def test_empty_meter_zero(self):
        assert ThroughputMeter().ops_per_sec() == 0.0

    def test_zero_width_window_is_nan(self):
        """Completions all at one timestamp: the rate is undefined, and
        the documented sentinel is NaN — not 0.0, which would read as
        'idle' when the system actually completed work."""
        meter = ThroughputMeter()
        meter.record(5.0)
        meter.record(5.0)
        assert math.isnan(meter.ops_per_us())
        assert math.isnan(meter.ops_per_sec())

    def test_single_completion_is_nan(self):
        meter = ThroughputMeter()
        meter.record(3.0)
        assert math.isnan(meter.ops_per_us())


def test_summarize_shape():
    recorder = LatencyRecorder()
    recorder.record(0, 4.0)
    meter = ThroughputMeter()
    meter.record(0)
    meter.record(10)
    summary = summarize(recorder, meter)
    assert set(summary) == {"count", "mean_us", "median_us", "p99_us",
                            "ops_per_sec"}
    assert summary["count"] == 1


class TestHistogramAndCdf:
    def test_histogram_counts_everything(self):
        recorder = LatencyRecorder()
        for latency in (1.0, 1.1, 5.0, 9.9):
            recorder.record(0, latency)
        buckets = recorder.histogram(bucket_width_us=1.0)
        assert sum(count for _start, count in buckets) == 4
        assert buckets[0][1] == 2  # the two ~1 µs samples share a bucket

    def test_histogram_bounded_buckets(self):
        recorder = LatencyRecorder()
        for i in range(1000):
            recorder.record(0, float(i))
        assert len(recorder.histogram(max_buckets=16)) <= 17

    def test_empty_histogram(self):
        assert LatencyRecorder().histogram() == []
        assert LatencyRecorder().cdf() == []

    def test_cdf_monotone(self):
        recorder = LatencyRecorder()
        for i in range(100):
            recorder.record(0, float(i))
        cdf = recorder.cdf(points=10)
        latencies = [latency for latency, _frac in cdf]
        fractions = [frac for _latency, frac in cdf]
        assert latencies == sorted(latencies)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
