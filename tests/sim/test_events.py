"""Event edge cases beyond the kernel tests."""

import pytest

from repro.sim import Event, SimulationError, Simulator
from repro.sim.events import AllOf, AnyOf


def test_event_states(sim):
    event = sim.event()
    assert not event.triggered and not event.processed and event.ok is None
    event.succeed("v")
    assert event.triggered and not event.processed
    sim.run()
    assert event.processed and event.ok and event.value == "v"


def test_failed_event_state(sim):
    event = sim.event()
    event.fail(ValueError("x"))
    sim.run()
    assert event.ok is False
    assert isinstance(event.value, ValueError)


def test_repr_reflects_state(sim):
    event = sim.event()
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    sim.run()
    assert "processed" in repr(event)


def test_anyof_with_already_processed_event(sim, drive):
    ready = sim.event()
    ready.succeed("early")
    sim.run()
    def main():
        index, value = yield sim.any_of([ready, sim.timeout(100)])
        return index, value, sim.now
    assert drive(sim, main()) == (0, "early", 0.0)


def test_allof_with_mixed_timing(sim, drive):
    ready = sim.event()
    ready.succeed("first")
    sim.run()
    def main():
        values = yield sim.all_of([ready, sim.timeout(5, "second")])
        return values
    assert drive(sim, main()) == ["first", "second"]


def test_anyof_failure_of_winner_propagates(sim, drive):
    doomed = sim.event()
    def failer():
        yield sim.timeout(1)
        doomed.fail(KeyError("lost"))
    sim.spawn(failer())
    def main():
        with pytest.raises(KeyError):
            yield sim.any_of([doomed, sim.timeout(100)])
        return sim.now
    assert drive(sim, main()) == 1.0


def test_anyof_ignores_later_outcomes(sim, drive):
    """Once the first event settles AnyOf, later failures are moot."""
    loser = sim.event()
    def late_failer():
        yield sim.timeout(5)
        loser.fail(RuntimeError("too late"))
    sim.spawn(late_failer())
    def main():
        index, value = yield sim.any_of([sim.timeout(1, "win"), loser])
        yield sim.timeout(10)  # let the failure land
        return index, value
    assert drive(sim, main()) == (0, "win")


def test_multiple_callbacks_all_fire(sim):
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(1))
    event.add_callback(lambda e: seen.append(2))
    event.succeed()
    sim.run()
    assert seen == [1, 2]
