"""Core pools and the PCIe cost model."""

import pytest

from repro.hw.cpu import CorePool
from repro.hw.pcie import PcieLink


class TestCorePool:
    def test_execute_runs_work_at_end(self, sim, drive):
        pool = CorePool(sim, cores=1)
        stamps = []
        def main():
            value = yield from pool.execute(
                5.0, work=lambda: stamps.append(sim.now) or "result")
            return value
        assert drive(sim, main()) == "result"
        assert stamps == [5.0]

    def test_cores_limit_parallelism(self, sim):
        pool = CorePool(sim, cores=2)
        finishes = []
        def job(tag):
            yield from pool.execute(10.0)
            finishes.append((tag, sim.now))
        for tag in range(4):
            sim.spawn(job(tag))
        sim.run()
        assert [t for _, t in finishes] == [10.0, 10.0, 20.0, 20.0]

    def test_ops_counted(self, sim, drive):
        pool = CorePool(sim, cores=1)
        def main():
            yield from pool.execute(1.0)
            yield from pool.execute(1.0)
            return pool.ops_executed
        assert drive(sim, main()) == 2

    def test_utilization(self, sim, drive):
        pool = CorePool(sim, cores=2)
        def main():
            yield from pool.execute(10.0)
            yield sim.timeout(10.0)
            return pool.utilization(20.0)
        # one core busy 10 of 20 us, over 2 cores -> 0.25
        assert drive(sim, main()) == pytest.approx(0.25)


class TestPcieLink:
    def test_read_includes_round_trip(self):
        link = PcieLink(round_trip_us=1.0, bytes_per_us=1000)
        assert link.read_time(500) == pytest.approx(1.5)

    def test_write_is_posted(self):
        link = PcieLink(round_trip_us=1.0, bytes_per_us=1000)
        # Posted writes pay only half a round trip.
        assert link.write_time(0) == pytest.approx(0.5)
        assert link.write_time(500) < link.read_time(500)

    def test_scaling_with_size(self):
        link = PcieLink()
        assert link.read_time(4096) > link.read_time(64)
