"""Host memory: bounds, allocation, integer codecs."""

import pytest

from repro.hw.memory import HostMemory, MemoryError_, NULL_PTR, POINTER_SIZE


def test_minimum_size_enforced():
    with pytest.raises(MemoryError_):
        HostMemory(POINTER_SIZE)


def test_null_page_reserved():
    memory = HostMemory(1024)
    with pytest.raises(MemoryError_):
        memory.read(0, 1)
    with pytest.raises(MemoryError_):
        memory.write(NULL_PTR, b"x")


def test_sbrk_never_returns_null():
    memory = HostMemory(1024)
    assert memory.sbrk(0) >= POINTER_SIZE


def test_sbrk_alignment():
    memory = HostMemory(1024)
    memory.sbrk(3)
    addr = memory.sbrk(8, align=64)
    assert addr % 64 == 0


def test_sbrk_exhaustion():
    memory = HostMemory(64)
    memory.sbrk(40)
    with pytest.raises(MemoryError_, match="out of memory"):
        memory.sbrk(32)


def test_sbrk_negative_rejected():
    with pytest.raises(MemoryError_):
        HostMemory(64).sbrk(-1)


def test_write_read_roundtrip():
    memory = HostMemory(256)
    addr = memory.sbrk(16)
    memory.write(addr, b"hello")
    assert memory.read(addr, 5) == b"hello"


def test_read_past_end_rejected():
    memory = HostMemory(64)
    with pytest.raises(MemoryError_):
        memory.read(60, 8)


def test_negative_length_rejected():
    memory = HostMemory(64)
    with pytest.raises(MemoryError_):
        memory.read(16, -1)


def test_uint_roundtrip_widths():
    memory = HostMemory(256)
    addr = memory.sbrk(32)
    for width in (1, 2, 4, 8):
        value = (1 << (8 * width)) - 2
        memory.write_uint(addr, value, width)
        assert memory.read_uint(addr, width) == value


def test_uint_overflow_rejected():
    memory = HostMemory(64)
    addr = memory.sbrk(8)
    with pytest.raises(MemoryError_):
        memory.write_uint(addr, 256, width=1)


def test_uint_little_endian():
    memory = HostMemory(64)
    addr = memory.sbrk(8)
    memory.write_uint(addr, 0x0102, 2)
    assert memory.read(addr, 2) == b"\x02\x01"


def test_pointer_roundtrip():
    memory = HostMemory(256)
    slot = memory.sbrk(8)
    memory.write_ptr(slot, 0xDEAD)
    assert memory.read_ptr(slot) == 0xDEAD


def test_fill():
    memory = HostMemory(256)
    addr = memory.sbrk(16)
    memory.write(addr, b"\xff" * 16)
    memory.fill(addr, 8)
    assert memory.read(addr, 16) == b"\x00" * 8 + b"\xff" * 8


def test_contains():
    memory = HostMemory(64)
    assert memory.contains(8, 56)
    assert not memory.contains(0, 1)       # null page
    assert not memory.contains(8, 57)      # past end
    assert not memory.contains(8, -1)


def test_bytes_allocated_high_water():
    memory = HostMemory(1024)
    before = memory.bytes_allocated
    memory.sbrk(100)
    assert memory.bytes_allocated >= before + 100


def test_contains_zero_length_edges():
    memory = HostMemory(64)
    # A zero-length range must still anchor at a real byte: one past
    # the end is never dereferenceable, even at zero length.
    assert not memory.contains(64, 0)
    assert memory.contains(63, 0)
    assert memory.contains(63, 1)
    assert not memory.contains(63, 2)
    assert not memory.contains(0, 0)  # null page


def test_zero_length_read_write_permissive_at_end():
    memory = HostMemory(64)
    # read/write of zero bytes touch nothing, so [POINTER_SIZE, size]
    # is all fair game — including the one-past-the-end address.
    assert memory.read(64, 0) == b""
    memory.write(64, b"")
    with pytest.raises(MemoryError_):
        memory.read(65, 0)
    with pytest.raises(MemoryError_):
        memory.read(64, 1)


def test_fill_nonzero_byte_and_cache_reuse():
    memory = HostMemory(256)
    addr = memory.sbrk(32)
    memory.fill(addr, 32, byte=0xAB)
    assert memory.read(addr, 32) == b"\xab" * 32
    pattern = memory._fill_cache[0xAB]
    memory.fill(addr, 8, byte=0xAB)  # smaller fill reuses the pattern
    assert memory._fill_cache[0xAB] is pattern
    memory.fill(addr, 16, byte=0xCD)
    assert memory.read(addr, 32) == b"\xcd" * 16 + b"\xab" * 16
    memory.fill(addr, 0, byte=0xEE)  # zero-length fill is a no-op
    assert memory.read(addr, 1) == b"\xcd"


def test_uint_roundtrip_without_struct_codec():
    # Widths with no precompiled codec (3, 5) take the int.to_bytes
    # fallback and must round-trip identically.
    memory = HostMemory(128)
    addr = memory.sbrk(16)
    for width in (3, 5):
        top = (1 << (8 * width)) - 1
        memory.write_uint(addr, top, width)
        assert memory.read_uint(addr, width) == top
        with pytest.raises(MemoryError_):
            memory.write_uint(addr, top + 1, width)


def test_uint_codec_bounds_checked_at_memory_edge():
    memory = HostMemory(64)
    # The struct fast path must enforce the same bounds as read/write:
    # an 8-byte integer ending exactly at size is fine, one byte later
    # is not.
    memory.write_uint(56, 0x1122334455667788, 8)
    assert memory.read_uint(56, 8) == 0x1122334455667788
    with pytest.raises(MemoryError_):
        memory.write_uint(57, 1, 8)
    with pytest.raises(MemoryError_):
        memory.read_uint(57, 8)
