"""Binary codecs: uints, bounded pointers, FieldStruct."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.layout import (
    BOUNDED_PTR_SIZE,
    FieldStruct,
    pack_bounded_ptr,
    pack_uint,
    unpack_bounded_ptr,
    unpack_uint,
)


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_uint64_roundtrip(value):
    assert unpack_uint(pack_uint(value, 8), 0, 8) == value


@given(st.integers(min_value=0, max_value=2**16 - 1),
       st.integers(min_value=0, max_value=2**16 - 1))
def test_uint_offset_decode(a, b):
    blob = pack_uint(a, 2) + pack_uint(b, 2)
    assert unpack_uint(blob, 0, 2) == a
    assert unpack_uint(blob, 2, 2) == b


def test_uint_overflow_raises():
    with pytest.raises(OverflowError):
        pack_uint(256, 1)


@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.integers(min_value=0, max_value=2**64 - 1))
def test_bounded_ptr_roundtrip(addr, bound):
    blob = pack_bounded_ptr(addr, bound)
    assert len(blob) == BOUNDED_PTR_SIZE
    assert unpack_bounded_ptr(blob) == (addr, bound)


class TestFieldStruct:
    def test_offsets(self):
        struct = FieldStruct(("a", 8), ("b", 2), ("c", 4))
        assert struct.offset("a") == 0
        assert struct.offset("b") == 8
        assert struct.offset("c") == 10
        assert struct.fixed_size == 14

    def test_width_lookup(self):
        struct = FieldStruct(("a", 8), ("tail", None))
        assert struct.width("a") == 8
        assert struct.width("tail") is None
        with pytest.raises(KeyError):
            struct.width("missing")

    def test_pack_unpack_roundtrip(self):
        struct = FieldStruct(("ver", 8), ("len", 4), ("body", None))
        blob = struct.pack(ver=7, len=3, body=b"xyz")
        values = struct.unpack(blob)
        assert values == {"ver": 7, "len": 3, "body": b"xyz"}

    def test_missing_fields_default_zero(self):
        struct = FieldStruct(("a", 2), ("b", 2))
        assert struct.unpack(struct.pack(b=9)) == {"a": 0, "b": 9}

    def test_variable_field_must_be_last(self):
        with pytest.raises(ValueError):
            FieldStruct(("tail", None), ("a", 8))

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.binary(max_size=64))
    def test_property_roundtrip(self, header, tail):
        struct = FieldStruct(("h", 4), ("t", None))
        assert struct.unpack(struct.pack(h=header, t=tail)) == {
            "h": header, "t": tail}
