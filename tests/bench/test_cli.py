"""CLI smoke tests (small scales)."""

import pytest

from repro.bench.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    assert "fig9" in capsys.readouterr().out


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.keys == 8000
    assert args.clients == [1, 8, 32, 96, 176]


def test_parser_client_list():
    args = build_parser().parse_args(["fig3", "--clients", "1,2,4"])
    assert args.clients == [1, 2, 4]


def test_point_kv(capsys):
    assert main(["point", "--kind", "kv", "--flavor", "prism-hw",
                 "--clients", "2", "--keys", "200"]) == 0
    out = capsys.readouterr().out
    assert "kv/prism-hw" in out


def test_point_tx(capsys):
    assert main(["point", "--kind", "tx", "--flavor", "farm-hw",
                 "--clients", "2", "--keys", "200"]) == 0
    assert "tx/farm-hw" in capsys.readouterr().out


def test_point_with_faults(capsys, tmp_path):
    record = tmp_path / "chaos.json"
    assert main(["point", "--kind", "rs", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--faults", "seed=3,drop=0.01",
                 "--json", str(record)]) == 0
    out = capsys.readouterr().out
    assert "goodput under faults" in out
    assert "retransmissions" in out
    import json
    point = json.loads(record.read_text())["points"][0]
    assert point["config"]["faults"] == "seed=3,drop=0.01"
    assert point["faults"]["plan"]["drop"] == 0.01


def test_motivation(capsys):
    assert main(["motivation"]) == 0
    assert "one-sided READ" in capsys.readouterr().out


def test_fig3_tiny_sweep(capsys):
    assert main(["fig3", "--clients", "1,2", "--keys", "300"]) == 0
    out = capsys.readouterr().out
    assert "prism-sw" in out and "pilaf-hw" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])
