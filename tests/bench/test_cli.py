"""CLI smoke tests (small scales)."""

import json
import os

import pytest

from repro.bench.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    assert "fig9" in capsys.readouterr().out


def test_parser_defaults():
    args = build_parser().parse_args(["fig3"])
    assert args.keys == 8000
    assert args.clients == [1, 8, 32, 96, 176]


def test_parser_client_list():
    args = build_parser().parse_args(["fig3", "--clients", "1,2,4"])
    assert args.clients == [1, 2, 4]


def test_point_kv(capsys):
    assert main(["point", "--kind", "kv", "--flavor", "prism-hw",
                 "--clients", "2", "--keys", "200"]) == 0
    out = capsys.readouterr().out
    assert "kv/prism-hw" in out


def test_point_tx(capsys):
    assert main(["point", "--kind", "tx", "--flavor", "farm-hw",
                 "--clients", "2", "--keys", "200"]) == 0
    assert "tx/farm-hw" in capsys.readouterr().out


def test_point_with_faults(capsys, tmp_path):
    record = tmp_path / "chaos.json"
    assert main(["point", "--kind", "rs", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--faults", "seed=3,drop=0.01",
                 "--json", str(record)]) == 0
    out = capsys.readouterr().out
    assert "goodput under faults" in out
    assert "retransmissions" in out
    import json
    point = json.loads(record.read_text())["points"][0]
    assert point["config"]["faults"] == "seed=3,drop=0.01"
    assert point["faults"]["plan"]["drop"] == 0.01


def test_motivation(capsys):
    assert main(["motivation"]) == 0
    assert "one-sided READ" in capsys.readouterr().out


def test_fig3_tiny_sweep(capsys):
    assert main(["fig3", "--clients", "1,2", "--keys", "300"]) == 0
    out = capsys.readouterr().out
    assert "prism-sw" in out and "pilaf-hw" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nope"])


def test_parser_profile_modes():
    parser = build_parser()
    assert parser.parse_args(["point"]).profile is None
    assert parser.parse_args(["point", "--profile"]).profile == "sample"
    assert parser.parse_args(
        ["point", "--profile=cprofile"]).profile == "cprofile"
    with pytest.raises(SystemExit):
        parser.parse_args(["point", "--profile", "perf"])


def test_point_profile_writes_host_record(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    record = tmp_path / "run.json"
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--json", str(record), "--profile"]) == 0
    out = capsys.readouterr().out
    assert "host self-profile" in out
    assert "events/s" in out
    assert "profile artifact written" in out
    data = json.loads(record.read_text())
    assert data["schema_version"] == 6
    host = data["points"][0]["host"]
    assert host["events_per_sec"] > 0
    assert host["wall_s"] > 0
    shares = sum(entry["share"] for entry in host["buckets"].values())
    assert 0 < shares <= 1.0 + 1e-9
    assert os.path.exists(tmp_path / "flame.point.txt")


def test_point_profile_cprofile_artifacts(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--profile=cprofile"]) == 0
    capsys.readouterr()
    assert os.path.exists(tmp_path / "point.pstats")
    assert os.path.exists(tmp_path / "flame.point.txt")


def test_record_identical_apart_from_host_section(tmp_path):
    # The host section is the ONLY difference --profile makes to the
    # record: wall-clock numbers never leak into simulated metrics.
    # Fresh interpreter per run — in-process back-to-back runs differ
    # in global channel-name counters, which is not what users diff.
    import subprocess
    import sys

    import repro
    env = dict(os.environ,
               PYTHONPATH=os.path.dirname(os.path.dirname(repro.__file__)))
    base = [sys.executable, "-m", "repro.bench.cli", "point",
            "--kind", "kv", "--flavor", "prism-sw",
            "--clients", "2", "--keys", "200"]
    plain, profiled = tmp_path / "plain.json", tmp_path / "prof.json"
    for extra in ([f"--json={plain}"], [f"--json={profiled}", "--profile"]):
        proc = subprocess.run(base + extra, env=env, cwd=tmp_path,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
    expected = json.loads(plain.read_text())
    observed = json.loads(profiled.read_text())
    del observed["points"][0]["host"]
    assert observed == expected


def test_sweep_wall_line_reports_events_per_sec(capsys):
    assert main(["fig3", "--clients", "1", "--keys", "200"]) == 0
    out = capsys.readouterr().out
    assert "s wall" in out
    assert "events/s" in out


def test_compare_host_flag(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    record = tmp_path / "host.json"
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--json", str(record), "--profile"]) == 0
    assert main(["compare", str(record), str(record), "--host"]) == 0
    out = capsys.readouterr().out
    assert "host.events_per_sec" in out
    assert "compare: PASS" in out


def test_fig1_profile_meters_internal_simulators(tmp_path, monkeypatch,
                                                 capsys):
    # fig1 builds its simulators inside the microbench helpers; the
    # ambient profiler must still meter them.
    monkeypatch.chdir(tmp_path)
    assert main(["fig1", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "host self-profile" in out
    assert os.path.exists(tmp_path / "flame.fig1.txt")


def test_parser_flight_modes():
    parser = build_parser()
    assert parser.parse_args(["point"]).flight is None
    assert parser.parse_args(["point", "--flight"]).flight == 65536
    assert parser.parse_args(["point", "--flight=128"]).flight == 128


def test_flight_dump_and_explain(capsys, tmp_path):
    dump = tmp_path / "flight.json"
    assert main(["point", "--kind", "rs", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--faults", "seed=3,drop=0.02",
                 "--flight", "--flight-dump", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "flight recorder" in out
    assert f"flight dump written to {dump}" in out
    data = json.loads(dump.read_text())
    assert data["ops_opened"] == data["ops_closed"] > 0
    assert main(["explain", str(dump), "--top", "2"]) == 0
    text = capsys.readouterr().out
    assert "anomalous requests" in text
    assert "causes:" in text
    assert "= measured" in text


def test_flight_dump_on_anomaly_without_explicit_path(capsys, monkeypatch,
                                                      tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["point", "--kind", "rs", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--faults", "seed=3,drop=0.02", "--flight"]) == 0
    out = capsys.readouterr().out
    assert "anomaly detected" in out
    assert os.path.exists(tmp_path / "flight.point.json")


def test_flight_clean_run_writes_no_dump(capsys, monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200", "--flight"]) == 0
    out = capsys.readouterr().out
    assert "flight recorder" in out
    assert "flight dump written" not in out
    assert not os.path.exists(tmp_path / "flight.point.json")


def test_record_identical_with_flight(tmp_path):
    # --flight must leave the --json record byte-identical: the flight
    # recorder observes transitions, it never creates or times them.
    import subprocess
    import sys

    import repro
    env = dict(os.environ,
               PYTHONPATH=os.path.dirname(os.path.dirname(repro.__file__)))
    base = [sys.executable, "-m", "repro.bench.cli", "point",
            "--kind", "rs", "--flavor", "prism-sw",
            "--clients", "2", "--keys", "200",
            "--faults", "seed=3,drop=0.02"]
    plain, flighted = tmp_path / "plain.json", tmp_path / "flight.json"
    for extra in ([f"--json={plain}"], [f"--json={flighted}", "--flight"]):
        proc = subprocess.run(base + extra, env=env, cwd=tmp_path,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
    assert json.loads(flighted.read_text()) == json.loads(plain.read_text())


def test_sweep_trace_writes_designated_point(capsys, tmp_path):
    # Satellite: --trace used to be silently ignored on fig sweeps.
    trace = tmp_path / "fig3.trace.json"
    assert main(["fig3", "--clients", "1,2", "--keys", "200",
                 "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert f"chrome trace written to {trace} (prism-sw c=2)" in out
    assert json.loads(trace.read_text())


def test_contention_trace_writes_designated_point(capsys, tmp_path):
    trace = tmp_path / "fig7.trace.json"
    assert main(["fig7", "--clients", "2", "--keys", "200",
                 "--zipfs", "0.0,0.9", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert f"chrome trace written to {trace} (prism-sw zipf=0.9)" in out
    assert json.loads(trace.read_text())


def test_sweep_flight_dumps_first_anomalous_point(capsys, tmp_path):
    dump = tmp_path / "sweep-flight.json"
    assert main(["fig6", "--clients", "1,2", "--keys", "200",
                 "--faults", "seed=3,drop=0.02",
                 "--flight", "--flight-dump", str(dump)]) == 0
    out = capsys.readouterr().out
    assert out.count("flight dump written") == 1
    assert json.loads(dump.read_text())["ops_opened"] > 0


def test_trace_and_flight_rejected_off_point_commands(capsys):
    assert main(["fig1", "--trace", "x.json"]) == 2
    assert "--trace is not supported" in capsys.readouterr().err
    assert main(["list", "--flight"]) == 2
    assert "--flight is not supported" in capsys.readouterr().err
    assert main(["point", "--flight=0"]) == 2
    assert "capacity" in capsys.readouterr().err


def test_explain_requires_one_path(capsys):
    assert main(["explain"]) == 2
    assert "usage" in capsys.readouterr().err


def test_parser_series_modes():
    parser = build_parser()
    assert parser.parse_args(["point"]).series is None
    assert parser.parse_args(["point", "--series"]).series == 50.0
    assert parser.parse_args(["point", "--series=25"]).series == 25.0


def test_series_point_prints_report(capsys):
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200", "--series"]) == 0
    out = capsys.readouterr().out
    assert "time series" in out
    assert "steady state" in out
    assert "reconciliation" in out
    assert "tput" in out and "lat" in out


def test_series_rejected_off_point_commands(capsys):
    assert main(["fig1", "--series"]) == 2
    assert "--series is not supported" in capsys.readouterr().err
    assert main(["list", "--series"]) == 2
    assert "--series is not supported" in capsys.readouterr().err


def test_series_window_must_be_positive(capsys):
    assert main(["point", "--series=0"]) == 2
    assert "window must be > 0" in capsys.readouterr().err


def test_warmup_measure_flags_validated(capsys):
    assert main(["point", "--warmup-us", "-1"]) == 2
    assert "--warmup-us must be positive" in capsys.readouterr().err
    assert main(["point", "--measure-us", "0"]) == 2
    assert "--measure-us must be positive" in capsys.readouterr().err
    assert main(["list", "--warmup-us", "10"]) == 2
    assert "--warmup-us is not supported" in capsys.readouterr().err


def test_warmup_measure_recorded_in_config(tmp_path, capsys):
    record = tmp_path / "windows.json"
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--warmup-us", "100", "--measure-us", "800",
                 "--json", str(record)]) == 0
    capsys.readouterr()
    config = json.loads(record.read_text())["points"][0]["config"]
    assert config["warmup_us"] == 100.0
    assert config["measure_us"] == 800.0


def test_series_json_embeds_report(tmp_path, capsys):
    record = tmp_path / "series.json"
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--series", "--json", str(record)]) == 0
    capsys.readouterr()
    data = json.loads(record.read_text())
    assert data["schema_version"] == 6
    series = data["points"][0]["series"]
    assert series["windows"]
    assert series["steady_state"]["detector"] == "mser"
    assert series["reconciliation"]["window_measured_sum"] == \
        data["points"][0]["metrics"]["ops"]


def test_record_identical_with_series(tmp_path):
    # --series must leave the rest of the --json record byte-identical,
    # faults included: the collector observes transitions, it never
    # creates or times them.
    import subprocess
    import sys

    import repro
    env = dict(os.environ,
               PYTHONPATH=os.path.dirname(os.path.dirname(repro.__file__)))
    base = [sys.executable, "-m", "repro.bench.cli", "point",
            "--kind", "rs", "--flavor", "prism-sw",
            "--clients", "2", "--keys", "200",
            "--faults", "seed=3,drop=0.02"]
    plain, collected = tmp_path / "plain.json", tmp_path / "series.json"
    for extra in ([f"--json={plain}"], [f"--json={collected}", "--series"]):
        proc = subprocess.run(base + extra, env=env, cwd=tmp_path,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
    expected = json.loads(plain.read_text())
    observed = json.loads(collected.read_text())
    del observed["points"][0]["series"]
    assert observed == expected


def test_sweep_series_prints_per_point(capsys):
    assert main(["fig3", "--clients", "1,2", "--keys", "200",
                 "--series"]) == 0
    out = capsys.readouterr().out
    # one series block per (flavor, client count) point
    assert out.count("time series") == 6
    assert "steady state" in out


def test_compare_series_flag(tmp_path, capsys):
    record = tmp_path / "series.json"
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--series", "--json", str(record)]) == 0
    capsys.readouterr()
    assert main(["compare", str(record), str(record), "--series"]) == 0
    out = capsys.readouterr().out
    assert "series.steady_mean_us" in out
    assert "compare: PASS" in out


def test_compare_host_and_series_combined(tmp_path, monkeypatch, capsys):
    # --host and --series compose: one invocation checks both band
    # families, and a trip in either fails the compare.
    monkeypatch.chdir(tmp_path)
    record = tmp_path / "run.json"
    assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                 "--clients", "2", "--keys", "200",
                 "--series", "--profile", "--json", str(record)]) == 0
    capsys.readouterr()
    assert main(["compare", str(record), str(record),
                 "--host", "--series"]) == 0
    out = capsys.readouterr().out
    assert "host.events_per_sec" in out
    assert "series.steady_mean_us" in out
    assert "compare: PASS" in out
    # A tripped series band still fails while host passes.
    import json as json_mod
    data = json_mod.loads(record.read_text())
    worse = json_mod.loads(record.read_text())
    worse["points"][0]["series"]["steady_state"]["steady_mean_us"] *= 2
    run = tmp_path / "worse.json"
    run.write_text(json_mod.dumps(worse))
    assert data["points"][0]["host"]["events_per_sec"] > 0
    assert main(["compare", str(record), str(run),
                 "--host", "--series"]) == 1
    assert "compare: FAIL" in capsys.readouterr().out
