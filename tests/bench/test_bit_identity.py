"""The optimized kernel must reproduce the committed baseline exactly.

The hot-path overhaul (slotted events, ready-deque kernel, timer
withdrawal, struct codecs, batched RNG draws) is only legal because it
never changes simulated semantics. This test enforces that end to end:
a fresh subprocess runs the perf-smoke fig3 point and its simulated
metrics must equal ``benchmarks/BENCH_baseline.json`` **bit for bit**
— not within tolerance.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "benchmarks" / "BENCH_baseline.json"

#: metrics that must match exactly (floats included: the simulation is
#: deterministic, so equality is the correct bar)
EXACT_METRICS = ("ops", "throughput_ops_per_sec", "mean_us", "p50_us",
                 "p99_us", "aborts", "retries")


def test_fig3_point_reproduces_baseline_bit_identical(tmp_path):
    out = tmp_path / "run.json"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "bench_fig3_kv_read.py"),
         "--clients", "4", "--keys", "1000", "--json", str(out)],
        check=True, env=env, cwd=tmp_path, capture_output=True, timeout=300)
    baseline_points = {point["id"]: point
                       for point in json.loads(BASELINE.read_text())["points"]}
    run_points = {point["id"]: point
                  for point in json.loads(out.read_text())["points"]}
    assert set(baseline_points) == set(run_points)
    for pid, base in baseline_points.items():
        run = run_points[pid]
        for metric in EXACT_METRICS:
            if metric not in base["metrics"]:
                continue
            assert run["metrics"][metric] == base["metrics"][metric], (
                f"{pid}: {metric} drifted from "
                f"{base['metrics'][metric]!r} to "
                f"{run['metrics'][metric]!r} — the kernel optimization "
                f"changed simulated results")
