"""Every calibration anchor must hold — this is what makes the
figure-level results trustworthy."""

import pytest

from repro.bench.calibration import anchors, report


def test_report_shape():
    rows = report()
    assert len(rows) == len(anchors())
    assert all({"anchor", "paper", "measured", "ok"} <= set(r)
               for r in rows)


@pytest.mark.parametrize("anchor", anchors(), ids=lambda a: a.name)
def test_anchor(anchor):
    row = anchor.check()
    assert row["ok"], (f"{row['anchor']}: measured {row['measured']} vs "
                       f"paper {row['paper']} ± {row['tolerance']}")
