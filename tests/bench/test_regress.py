"""The machine-readable result schema and regression comparator."""

import copy
import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import run_point
from repro.bench.regress import (
    DEFAULT_TOLERANCES,
    HOST_TOLERANCES,
    SCHEMA,
    SCHEMA_VERSION,
    SERIES_TOLERANCES,
    SUPPORTED_SCHEMA_VERSIONS,
    compare,
    format_compare,
    load_record,
    make_point,
    make_record,
    point_id,
    wall_section,
    write_record,
)
from repro.workload import YCSB_C


@pytest.fixture(scope="module")
def small_result():
    return run_point("kv", "prism-sw",
                     lambda i: YCSB_C(200, seed=11, client_id=i), 2,
                     n_keys=200)


@pytest.fixture
def record(small_result):
    config = {"kind": "kv", "flavor": "prism-sw", "clients": 2,
              "keys": 200, "seed": 11}
    point = make_point("kv", "prism-sw", small_result, config)
    return make_record("test", [point])


class TestRecord:
    def test_envelope(self, record):
        assert record["schema"] == SCHEMA
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["benchmark"] == "test"
        assert "python" in record["provenance"]

    def test_point_shape(self, record, small_result):
        point = record["points"][0]
        assert point["id"] == point_id("kv", "prism-sw", 2)
        metrics = point["metrics"]
        assert metrics["throughput_ops_per_sec"] == \
            small_result.throughput_ops_per_sec
        assert metrics["mean_us"] == small_result.mean_latency_us
        assert metrics["p99_us"] == small_result.p99_latency_us

    def test_round_trip(self, record, tmp_path):
        path = tmp_path / "r.json"
        write_record(record, path)
        loaded = load_record(path)
        assert loaded == json.loads(json.dumps(record))

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"some": "thing"}')
        with pytest.raises(ValueError, match="not a"):
            load_record(path)

    def test_load_rejects_future_schema(self, record, tmp_path):
        record = dict(record, schema_version=SCHEMA_VERSION + 1)
        path = tmp_path / "future.json"
        path.write_text(json.dumps(record))
        with pytest.raises(ValueError, match="schema_version"):
            load_record(path)


def _degrade(record, metric, factor):
    worse = copy.deepcopy(record)
    worse["points"][0]["metrics"][metric] *= factor
    return worse


class TestCompare:
    def test_self_compare_passes(self, record):
        report = compare(record, record)
        assert report["ok"]
        assert report["regressions"] == []
        assert all(f["status"] == "ok" for f in report["findings"])

    def test_degraded_throughput_fails(self, record):
        report = compare(record, _degrade(record,
                                          "throughput_ops_per_sec", 0.90))
        assert not report["ok"]
        bad = report["regressions"]
        assert [f["metric"] for f in bad] == ["throughput_ops_per_sec"]
        assert bad[0]["delta_rel"] == pytest.approx(-0.10)

    def test_degraded_latency_fails(self, record):
        report = compare(record, _degrade(record, "p99_us", 1.10))
        assert not report["ok"]
        assert report["regressions"][0]["metric"] == "p99_us"

    def test_improvement_never_fails(self, record):
        better = _degrade(record, "throughput_ops_per_sec", 1.30)
        better = _degrade(better, "mean_us", 0.70)
        report = compare(record, better)
        assert report["ok"]
        improved = {f["metric"] for f in report["findings"]
                    if f["status"] == "improved"}
        assert {"throughput_ops_per_sec", "mean_us"} <= improved

    def test_within_tolerance_passes(self, record):
        # p99 band is 5%: a 3% slip is noise, not a regression.
        report = compare(record, _degrade(record, "p99_us", 1.03))
        assert report["ok"]

    def test_tolerance_override(self, record):
        slipped = _degrade(record, "p99_us", 1.03)
        assert not compare(record, slipped,
                           tolerances={"p99_us": 0.01})["ok"]
        assert compare(record, _degrade(record, "mean_us", 1.10),
                       tolerances={"mean_us": 0.20})["ok"]

    def test_unknown_tolerance_metric_rejected(self, record):
        with pytest.raises(ValueError, match="no tolerance band"):
            compare(record, record, tolerances={"bogus": 0.1})

    def test_missing_point_fails(self, record):
        empty = dict(record, points=[])
        report = compare(record, empty)
        assert not report["ok"]
        assert report["regressions"][0]["status"] == "missing"

    def test_config_drift_fails(self, record):
        drifted = copy.deepcopy(record)
        drifted["points"][0]["config"]["keys"] = 999
        report = compare(record, drifted)
        assert not report["ok"]
        finding = report["regressions"][0]
        assert finding["status"] == "config-drift"
        assert "keys" in finding["metric"]

    def test_nan_handling(self, record):
        nan = float("nan")
        both_nan = copy.deepcopy(record)
        both_nan["points"][0]["metrics"]["p99_us"] = nan
        assert compare(both_nan, both_nan)["ok"]
        run_nan = copy.deepcopy(record)
        run_nan["points"][0]["metrics"]["p99_us"] = nan
        assert not compare(record, run_nan)["ok"]

    def test_format_ends_with_verdict(self, record):
        assert format_compare(compare(record, record)).endswith(
            "compare: PASS (0 finding(s) over tolerance)")
        text = format_compare(
            compare(record, _degrade(record, "mean_us", 2.0)))
        assert "FAIL" in text.splitlines()[-1]

    def test_default_bands_cover_core_metrics(self):
        assert {"throughput_ops_per_sec", "mean_us", "p50_us",
                "p99_us"} <= set(DEFAULT_TOLERANCES)


class TestCli:
    def _write_run(self, tmp_path, name="run.json"):
        path = tmp_path / name
        assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                     "--clients", "2", "--keys", "200",
                     "--json", str(path)]) == 0
        return path

    def test_json_flag_writes_record(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        record = load_record(path)
        assert record["points"][0]["id"] == "kv/prism-sw/c2"
        assert record["points"][0]["utilization"]
        assert record["points"][0]["bottleneck"]["verdict"]
        assert "result record written" in capsys.readouterr().out

    def test_util_flag_prints_report(self, capsys):
        assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                     "--clients", "2", "--keys", "200", "--util"]) == 0
        out = capsys.readouterr().out
        assert "resource utilization" in out
        assert "bottleneck:" in out

    def test_compare_self_exits_zero(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["compare", str(path), str(path)]) == 0
        assert "compare: PASS" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        worse = json.loads(path.read_text())
        worse["points"][0]["metrics"]["throughput_ops_per_sec"] *= 0.5
        worse_path = tmp_path / "worse.json"
        worse_path.write_text(json.dumps(worse))
        assert main(["compare", str(path), str(worse_path)]) == 1
        assert "compare: FAIL" in capsys.readouterr().out

    def test_compare_tolerance_flag(self, tmp_path):
        path = self._write_run(tmp_path)
        slightly = json.loads(path.read_text())
        slightly["points"][0]["metrics"]["p99_us"] *= 1.03
        other = tmp_path / "slip.json"
        other.write_text(json.dumps(slightly))
        assert main(["compare", str(path), str(other)]) == 0
        assert main(["compare", str(path), str(other),
                     "--tolerance", "p99_us=0.01"]) == 1

    def test_compare_wants_two_paths(self, tmp_path, capsys):
        path = self._write_run(tmp_path)
        assert main(["compare", str(path)]) == 2
        assert "usage" in capsys.readouterr().err

    def test_sweep_json(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        assert main(["fig3", "--clients", "1,2", "--keys", "200",
                     "--json", str(path)]) == 0
        record = load_record(path)
        assert record["benchmark"] == "fig3"
        ids = {point["id"] for point in record["points"]}
        # one point per (flavor, client count)
        assert "kv/prism-sw/c1" in ids and "kv/pilaf-hw/c2" in ids
        assert len(record["points"]) == 6


class TestSchemaV2:
    """v2 is additive: v1 records still load and compare cleanly."""

    def test_v1_record_still_loads(self, record, tmp_path):
        v1 = copy.deepcopy(record)
        v1["schema_version"] = 1
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(v1))
        assert load_record(path)["schema_version"] == 1

    def test_v1_baseline_compares_against_v2_run(self, small_result,
                                                 tmp_path):
        config = {"kind": "kv", "flavor": "prism-sw", "clients": 2,
                  "keys": 200, "seed": 11}
        baseline = make_record(
            "test", [make_point("kv", "prism-sw", small_result, config)])
        baseline["schema_version"] = 1
        # A v2 run of the same point carries the new telemetry fields.
        enriched = make_point(
            "kv", "prism-sw", small_result, config,
            primitives={"cas": {"attempts": 0}},
            critpath={"get": {"count": 1, "critical_sum_us": 1.0}})
        current = make_record("test", [enriched])
        report = compare(baseline, current)
        assert report["ok"]
        assert report["regressions"] == []

    def test_telemetry_fields_are_optional(self, small_result):
        config = {"kind": "kv", "flavor": "prism-sw", "clients": 2}
        bare = make_point("kv", "prism-sw", small_result, config)
        assert "primitives" not in bare
        assert "critpath" not in bare
        rich = make_point("kv", "prism-sw", small_result, config,
                          primitives={"cas": {}}, critpath={})
        assert rich["primitives"] == {"cas": {}}
        assert rich["critpath"] == {}

    def test_ops_band_present(self):
        assert DEFAULT_TOLERANCES["ops"]["direction"] == "higher"


def _host_section(events_per_sec=100_000.0, wall_s=0.5):
    return {
        "wall_s": wall_s,
        "runs": 1,
        "events": int(events_per_sec * wall_s),
        "resumes": int(events_per_sec * wall_s / 2),
        "events_per_sec": events_per_sec,
        "resumes_per_sec": events_per_sec / 2,
        "stride": 1,
        "buckets": {"dispatch": {"seconds": wall_s / 4, "share": 0.25}},
        "attributed_share": 0.25,
    }


class TestSchemaV3:
    """v3 is additive: points may carry a wall-clock ``host`` section."""

    @pytest.fixture
    def config(self):
        return {"kind": "kv", "flavor": "prism-sw", "clients": 2,
                "keys": 200, "seed": 11}

    @pytest.fixture
    def v3_record(self, small_result, config):
        point = make_point("kv", "prism-sw", small_result, config,
                           host=_host_section())
        return make_record("test", [point])

    def test_v3_is_still_supported(self):
        assert 3 in SUPPORTED_SCHEMA_VERSIONS

    def test_host_field_is_optional(self, small_result, config):
        bare = make_point("kv", "prism-sw", small_result, config)
        assert "host" not in bare
        rich = make_point("kv", "prism-sw", small_result, config,
                          host=_host_section())
        assert rich["host"]["events_per_sec"] == 100_000.0

    def test_v3_round_trip(self, v3_record, tmp_path):
        v3_record = dict(v3_record, schema_version=3)
        path = tmp_path / "v3.json"
        write_record(v3_record, path)
        loaded = load_record(path)
        assert loaded["schema_version"] == 3
        assert loaded["points"][0]["host"]["wall_s"] == 0.5

    def test_v3_compares_against_v1_and_v2_baselines(
            self, small_result, config, v3_record):
        for version in (1, 2):
            baseline = make_record(
                "test", [make_point("kv", "prism-sw", small_result, config)])
            baseline["schema_version"] = version
            report = compare(baseline, v3_record)
            assert report["ok"], version

    def test_host_self_compare_passes(self, v3_record):
        report = compare(v3_record, v3_record, host=True)
        assert report["ok"]
        assert {f["metric"] for f in report["findings"]} == \
            set(HOST_TOLERANCES)

    def test_host_mode_ignores_simulated_metrics(self, v3_record):
        worse = _degrade(v3_record, "throughput_ops_per_sec", 0.5)
        assert compare(v3_record, worse, host=True)["ok"]
        assert not compare(v3_record, worse)["ok"]

    def test_gross_host_slowdown_fails(self, small_result, config,
                                       v3_record):
        slow = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            host=_host_section(events_per_sec=40_000.0, wall_s=1.25))])
        report = compare(v3_record, slow, host=True)
        assert not report["ok"]
        assert {f["metric"] for f in report["regressions"]} == \
            {"host.events_per_sec", "host.wall_s"}

    def test_modest_host_noise_passes(self, small_result, config,
                                      v3_record):
        # 40% slower is inside the deliberately wide (2x) bands.
        noisy = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            host=_host_section(events_per_sec=60_000.0, wall_s=0.7))])
        assert compare(v3_record, noisy, host=True)["ok"]

    def test_baseline_without_host_is_not_an_error(
            self, small_result, config, v3_record):
        old = make_record(
            "test", [make_point("kv", "prism-sw", small_result, config)])
        old["schema_version"] = 2
        report = compare(old, v3_record, host=True)
        assert report["ok"]
        assert report["findings"] == []

    def test_run_without_host_is_a_regression(self, small_result, config,
                                              v3_record):
        unprofiled = make_record(
            "test", [make_point("kv", "prism-sw", small_result, config)])
        report = compare(v3_record, unprofiled, host=True)
        assert not report["ok"]

    def test_host_tolerance_override(self, small_result, config, v3_record):
        noisy = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            host=_host_section(events_per_sec=60_000.0, wall_s=0.7))])
        assert not compare(v3_record, noisy, host=True,
                           tolerances={"host.events_per_sec": 0.1})["ok"]

    def test_host_metrics_unknown_outside_host_mode(self, v3_record):
        with pytest.raises(ValueError, match="no tolerance band"):
            compare(v3_record, v3_record,
                    tolerances={"host.events_per_sec": 0.1})

    def test_host_bands_are_wide(self):
        assert HOST_TOLERANCES["host.events_per_sec"]["rel"] >= 0.5
        assert HOST_TOLERANCES["host.wall_s"]["rel"] >= 1.0


def _series_section(mean_us=10.0, p99_us=20.0, tput=100_000.0):
    return {
        "window_us": 50.0,
        "steady_state": {
            "detector": "mser",
            "transient_windows": 2,
            "transient_end_us": 100.0,
            "configured_warmup_us": 300.0,
            "warmup_sufficient": True,
            "steady_mean_us": mean_us,
            "steady_p99_us": p99_us,
            "steady_tput_ops_per_sec": tput,
        },
        "annotations": [],
    }


class TestSchemaV4:
    """v4 is additive: points may carry a windowed ``series`` section."""

    @pytest.fixture
    def config(self):
        return {"kind": "kv", "flavor": "prism-sw", "clients": 2,
                "keys": 200, "seed": 11}

    @pytest.fixture
    def v4_record(self, small_result, config):
        point = make_point("kv", "prism-sw", small_result, config,
                           series=_series_section())
        return make_record("test", [point])

    def test_current_version_is_v6(self):
        assert SCHEMA_VERSION == 6
        assert SUPPORTED_SCHEMA_VERSIONS == (1, 2, 3, 4, 5, 6)

    def test_series_field_is_optional(self, small_result, config):
        bare = make_point("kv", "prism-sw", small_result, config)
        assert "series" not in bare
        rich = make_point("kv", "prism-sw", small_result, config,
                          series=_series_section())
        assert rich["series"]["steady_state"]["detector"] == "mser"

    def test_v4_round_trip(self, v4_record, tmp_path):
        path = tmp_path / "v4.json"
        write_record(v4_record, path)
        loaded = load_record(path)
        assert loaded["schema_version"] == 6
        assert loaded["points"][0]["series"]["window_us"] == 50.0

    def test_v4_compares_against_older_baselines(self, small_result,
                                                 config, v4_record):
        for version in (1, 2, 3):
            baseline = make_record(
                "test", [make_point("kv", "prism-sw", small_result, config)])
            baseline["schema_version"] = version
            report = compare(baseline, v4_record)
            assert report["ok"], version

    def test_series_self_compare_passes(self, v4_record):
        report = compare(v4_record, v4_record, series=True)
        assert report["ok"]
        assert {f["metric"] for f in report["findings"]} == \
            set(SERIES_TOLERANCES)

    def test_series_mode_ignores_simulated_metrics(self, v4_record):
        worse = _degrade(v4_record, "throughput_ops_per_sec", 0.5)
        assert compare(v4_record, worse, series=True)["ok"]
        assert not compare(v4_record, worse)["ok"]

    def test_steady_state_regression_fails(self, small_result, config,
                                           v4_record):
        slow = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            series=_series_section(mean_us=15.0, tput=60_000.0))])
        report = compare(v4_record, slow, series=True)
        assert not report["ok"]
        assert {f["metric"] for f in report["regressions"]} == \
            {"series.steady_mean_us", "series.steady_tput_ops_per_sec"}

    def test_baseline_without_series_is_not_an_error(
            self, small_result, config, v4_record):
        old = make_record(
            "test", [make_point("kv", "prism-sw", small_result, config)])
        old["schema_version"] = 3
        report = compare(old, v4_record, series=True)
        assert report["ok"]
        assert report["findings"] == []

    def test_run_without_series_is_a_regression(self, small_result,
                                                config, v4_record):
        uncollected = make_record(
            "test", [make_point("kv", "prism-sw", small_result, config)])
        assert not compare(v4_record, uncollected, series=True)["ok"]

    def test_series_tolerance_override(self, v4_record, small_result,
                                       config):
        slipped = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            series=_series_section(mean_us=10.1))])
        assert compare(v4_record, slipped, series=True)["ok"]
        assert not compare(v4_record, slipped, series=True,
                           tolerances={"series.steady_mean_us": 0.001})["ok"]

    def test_series_metrics_unknown_outside_series_mode(self, v4_record):
        with pytest.raises(ValueError, match="no tolerance band"):
            compare(v4_record, v4_record,
                    tolerances={"series.steady_mean_us": 0.1})

    def test_host_and_series_modes_combine(self, small_result, config):
        both = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            series=_series_section(),
            host={"events_per_sec": 1e6, "wall_s": 0.5})])
        report = compare(both, both, host=True, series=True)
        assert report["ok"]
        assert {f["metric"] for f in report["findings"]} == \
            set(SERIES_TOLERANCES) | set(HOST_TOLERANCES)

    def test_combined_mode_fails_when_either_band_trips(
            self, small_result, config):
        both = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            series=_series_section(),
            host={"events_per_sec": 1e6, "wall_s": 0.5})])
        slow_host = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            series=_series_section(),
            host={"events_per_sec": 1e5, "wall_s": 5.0})])
        report = compare(both, slow_host, host=True, series=True)
        assert not report["ok"]
        assert {f["metric"] for f in report["regressions"]} == \
            set(HOST_TOLERANCES)
        slow_series = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            series=_series_section(mean_us=20.0),
            host={"events_per_sec": 1e6, "wall_s": 0.5})])
        assert not compare(both, slow_series, host=True, series=True)["ok"]

    def test_combined_mode_tolerance_lookup_spans_both_families(
            self, small_result, config):
        both = make_record("test", [make_point(
            "kv", "prism-sw", small_result, config,
            series=_series_section(),
            host={"events_per_sec": 1e6, "wall_s": 0.5})])
        report = compare(both, both, host=True, series=True,
                         tolerances={"host.wall_s": 0.5,
                                     "series.steady_p99_us": 0.01})
        assert report["ok"]
        with pytest.raises(ValueError, match="no tolerance band"):
            compare(both, both, host=True, series=True,
                    tolerances={"p99_us": 0.1})


class TestPrimitivesCli:
    def test_point_primitives_prints_telemetry(self, capsys):
        assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                     "--clients", "2", "--keys", "200",
                     "--primitives"]) == 0
        out = capsys.readouterr().out
        assert "primitive telemetry" in out
        assert "chains:" in out
        assert "critical path" in out
        assert "critical-path sum" in out
        assert "== mean latency" in out

    def test_json_with_primitives_embeds_reports(self, tmp_path, capsys):
        path = tmp_path / "prim.json"
        assert main(["point", "--kind", "kv", "--flavor", "prism-sw",
                     "--clients", "2", "--keys", "200",
                     "--primitives", "--json", str(path)]) == 0
        record = load_record(path)
        point = record["points"][0]
        assert record["schema_version"] == SCHEMA_VERSION
        assert point["primitives"]["chains"]["requests"] > 0
        assert point["critpath"]
        # The telemetry must not leak into the config fingerprint:
        # a v1 baseline of the same point would otherwise drift.
        assert "primitives" not in point["config"]
        capsys.readouterr()


class TestWallSection:
    """v5: the wall-clock record available on every run."""

    def test_wall_section_from_harness_result(self, small_result):
        wall = wall_section(small_result)
        assert wall is not None
        assert wall["wall_s"] > 0
        assert wall["events_executed"] > 0
        assert wall["events_per_sec"] == pytest.approx(
            wall["events_executed"] / wall["wall_s"])

    def test_wall_section_absent_without_timing(self, small_result):
        stripped = copy.deepcopy(small_result)
        stripped.wall_s = 0.0
        assert wall_section(stripped) is None

    def test_wall_field_is_additive(self, small_result):
        config = {"kind": "kv", "flavor": "prism-sw", "clients": 2,
                  "keys": 200, "seed": 11}
        bare = make_point("kv", "prism-sw", small_result, config)
        assert "wall" not in bare
        rich = make_point("kv", "prism-sw", small_result, config,
                          wall=wall_section(small_result))
        assert rich["wall"]["events_executed"] > 0
        # old records without the field still load and compare
        record = make_record("test", [rich])
        report = compare(record, record)
        assert report["ok"]
