"""The benchmark harness itself: every flavor builds and measures."""

import pytest

from repro.bench.harness import build_system, run_point, sweep_clients
from repro.bench.microbench import (
    CLASSIC_PRIMITIVES,
    PRIMITIVES,
    measure_primitive,
)
from repro.bench.reporting import (
    CURVE_HEADERS,
    curve_rows,
    low_load_latency,
    peak_throughput,
    print_table,
)
from repro.sim import Simulator
from repro.workload import YCSB_A, YCSB_C, YcsbTransactionalWorkload

KV_FLAVORS = ["prism-sw", "prism-hw", "prism-bluefield", "pilaf-hw",
              "pilaf-sw"]
RS_FLAVORS = ["prism-sw", "abdlock-hw", "abdlock-sw"]
TX_FLAVORS = ["prism-sw", "farm-hw", "farm-sw"]


@pytest.mark.parametrize("flavor", KV_FLAVORS)
def test_kv_flavors_build_and_run(flavor):
    result = run_point("kv", flavor,
                       lambda i: YCSB_A(200, seed=1, client_id=i),
                       n_clients=2, n_keys=200, warmup_us=50,
                       measure_us=400)
    assert result.ops > 0
    assert result.mean_latency_us > 0


@pytest.mark.parametrize("flavor", RS_FLAVORS)
def test_rs_flavors_build_and_run(flavor):
    result = run_point("rs", flavor,
                       lambda i: YCSB_A(100, seed=1, client_id=i),
                       n_clients=2, n_keys=100, warmup_us=50,
                       measure_us=400)
    assert result.ops > 0


@pytest.mark.parametrize("flavor", TX_FLAVORS)
def test_tx_flavors_build_and_run(flavor):
    result = run_point(
        "tx", flavor,
        lambda i: YcsbTransactionalWorkload(100, keys_per_txn=1, seed=1,
                                            client_id=i),
        n_clients=2, n_keys=100, warmup_us=50, measure_us=400)
    assert result.ops > 0


def test_unknown_flavor_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="unknown kv flavor"):
        build_system("kv", "nonsense", sim, n_keys=10)


def test_sweep_produces_monotone_throughput():
    results = sweep_clients(
        "kv", "prism-sw", lambda i: YCSB_C(500, seed=2, client_id=i),
        [1, 4], n_keys=500, warmup_us=50, measure_us=400)
    assert len(results) == 2
    assert (results[1].throughput_ops_per_sec
            > results[0].throughput_ops_per_sec)
    assert peak_throughput(results) == results[1].throughput_ops_per_sec
    assert low_load_latency(results) == results[0].mean_latency_us


def test_all_primitives_measurable_on_all_prism_backends():
    for backend in ("prism-sw", "prism-hw", "prism-bluefield"):
        for primitive in PRIMITIVES:
            latency = measure_primitive(backend, primitive, repeats=2)
            assert latency > 0


def test_classic_primitives_on_rdma_backend():
    for primitive in CLASSIC_PRIMITIVES:
        assert measure_primitive("rdma", primitive, repeats=2) > 0


def test_print_table_formats(capsys):
    print_table("demo", ["a", "b"], [[1, 2.5], ["x", 3.25]])
    out = capsys.readouterr().out
    assert "== demo ==" in out
    assert "2.50" in out
    assert "x" in out


def test_curve_rows_shape():
    results = sweep_clients(
        "kv", "prism-sw", lambda i: YCSB_C(200, seed=3, client_id=i),
        [1], n_keys=200, warmup_us=50, measure_us=200)
    rows = curve_rows(results)
    assert len(rows) == 1
    assert len(rows[0]) == len(CURVE_HEADERS)


class TestAggregatedSourceModel:
    MODEL = {"rate_per_client_ops_s": 200.0, "seed": 3, "window": 8}

    def run_aggregated(self, n_clients=10_000):
        return run_point("kv", "prism-sw", None, n_clients=n_clients,
                         n_keys=200, warmup_us=100, measure_us=500,
                         source_model=dict(self.MODEL))

    def test_aggregated_point_runs(self):
        result = self.run_aggregated()
        assert result.clients == 10_000
        assert result.ops > 100
        assert result.mean_latency_us > 0
        model = result.extra["source_model"]
        assert model["model"] == "aggregated-open-loop"
        assert model["clients"] == 10_000
        assert model["n_sources"] == 11
        assert model["windows"] == [8] * 11
        assert result.extra["stalled_arrivals"] >= 0

    def test_aggregated_point_deterministic(self):
        first = self.run_aggregated()
        second = self.run_aggregated()
        assert first.ops == second.ops
        assert first.mean_latency_us == second.mean_latency_us
        assert first.extra["events_executed"] == \
            second.extra["events_executed"]

    def test_wall_section_recorded_on_every_run(self):
        result = run_point("kv", "prism-sw",
                           lambda i: YCSB_C(100, seed=1, client_id=i),
                           n_clients=2, n_keys=100, warmup_us=50,
                           measure_us=200)
        assert result.wall_s > 0
        assert result.extra["events_executed"] > 0
