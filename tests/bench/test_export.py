"""Figure data export (CSV / gnuplot)."""

import os

import pytest

from repro.bench.export import FigureData, export_sweep_figure
from repro.workload.driver import RunResult


def _result(clients, tput, latency):
    return RunResult(clients=clients, ops=100,
                     throughput_ops_per_sec=tput,
                     mean_latency_us=latency, median_latency_us=latency,
                     p99_latency_us=latency * 2)


def test_duplicate_series_rejected():
    figure = FigureData("f")
    figure.add_series("a", [(1, 2)])
    with pytest.raises(ValueError):
        figure.add_series("a", [(3, 4)])


def test_csv_contents(tmp_path):
    figure = FigureData("fig", x_label="tput", y_label="lat")
    figure.add_series("sys1", [(1.0, 5.0), (2.0, 6.5)])
    path = figure.write_csv(str(tmp_path / "fig.csv"))
    lines = open(path).read().splitlines()
    assert lines[0] == "series,tput,lat"
    assert "sys1,1,5" in lines[1]
    assert "sys1,2,6.5" in lines[2]


def test_add_sweep_uses_runresults():
    figure = FigureData("fig")
    figure.add_sweep("sys", [_result(1, 2e6, 8.0), _result(8, 4e6, 9.0)])
    assert figure.series["sys"] == [(2.0, 8.0), (4.0, 9.0)]


def test_gnuplot_script_and_dat(tmp_path):
    figure = FigureData("fig9", x_label="Mtxn/s", y_label="us")
    figure.add_series("prism-tx", [(1, 18), (4, 22)])
    figure.add_series("farm", [(1, 20), (3.5, 27)])
    csv_path = str(tmp_path / "fig9.csv")
    gp_path = str(tmp_path / "fig9.gp")
    figure.write_csv(csv_path)
    figure.write_gnuplot(gp_path, csv_path)
    script = open(gp_path).read()
    assert "plot" in script and "prism-tx" in script and "farm" in script
    dat = open(str(tmp_path / "fig9.dat")).read()
    assert "# prism-tx" in dat and "1 18" in dat


def test_export_sweep_figure(tmp_path):
    curves = {
        "prism": [_result(1, 1e6, 6.0)],
        "pilaf": [_result(1, 0.8e6, 8.5)],
    }
    csv_path, gp_path = export_sweep_figure(
        "fig3", curves, out_dir=str(tmp_path / "figs"))
    assert os.path.exists(csv_path)
    assert os.path.exists(gp_path)
    assert "prism" in open(csv_path).read()
