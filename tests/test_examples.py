"""The examples must stay runnable (they are documentation)."""

import os
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _examples():
    return sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


def test_examples_exist():
    names = _examples()
    assert "quickstart.py" in names
    assert len(names) >= 4  # quickstart + three domain scenarios


@pytest.mark.parametrize("script", _examples())
def test_example_compiles(script):
    py_compile.compile(os.path.join(EXAMPLES_DIR, script), doraise=True)


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    out = result.stdout
    assert "indirect READ" in out
    assert "chained ALLOCATE->redirect->CAS committed=True" in out
    assert "NAK'd as expected" in out
