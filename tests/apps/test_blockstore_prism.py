"""PRISM-RS: ABD over PRISM ops — functionality and protocol shape."""

import pytest

from repro.apps.blockstore import PrismRsClient, PrismRsReplica
from repro.apps.blockstore.layout import RsLayout
from repro.prism import SoftwarePrismBackend


@pytest.fixture
def replicas(sim, app_fabric):
    reps = [PrismRsReplica(sim, app_fabric, f"r{i}", SoftwarePrismBackend,
                           n_blocks=16, block_size=64)
            for i in range(3)]
    for block in range(16):
        for rep in reps:
            rep.load(block, bytes([block]) * 64)
    return reps


def _client(sim, fabric, replicas, cid=1, host="c0"):
    return PrismRsClient(sim, fabric, host, replicas, client_id=cid)


def test_even_replica_count_rejected(sim, app_fabric, replicas):
    with pytest.raises(ValueError):
        PrismRsClient(sim, app_fabric, "c0", replicas[:2], client_id=1)


def test_get_returns_loaded_value(sim, app_fabric, replicas, drive):
    client = _client(sim, app_fabric, replicas)
    def main():
        return (yield from client.get(3))
    assert drive(sim, main()) == bytes([3]) * 64


def test_put_then_get(sim, app_fabric, replicas, drive):
    client = _client(sim, app_fabric, replicas)
    def main():
        yield from client.put(5, b"Z" * 64)
        return (yield from client.get(5))
    assert drive(sim, main()) == b"Z" * 64


def test_put_installs_at_a_majority(sim, app_fabric, replicas, drive):
    client = _client(sim, app_fabric, replicas)
    def main():
        yield from client.put(7, b"Q" * 64)
        yield sim.timeout(100)  # let the straggler replica finish
    drive(sim, main())
    sim.run(until=sim.now + 100)
    installed = 0
    for rep in replicas:
        meta = rep.prism.space.read(rep.layout.meta_addr(7), 16)
        tag, addr = RsLayout.unpack_meta(meta)
        stored_tag, value = RsLayout.unpack_buffer(
            rep.prism.space.read(addr, 8 + 64))
        if value == b"Q" * 64:
            assert stored_tag == tag  # duplicated tag consistent (§7.3)
            installed += 1
    assert installed >= 2  # f+1 of 3


def test_tags_increase_with_each_put(sim, app_fabric, replicas, drive):
    client = _client(sim, app_fabric, replicas)
    def main():
        yield from client.put(2, b"a" * 64)
        meta1 = replicas[0].prism.space.read(
            replicas[0].layout.meta_addr(2), 16)
        yield from client.put(2, b"b" * 64)
        meta2 = replicas[0].prism.space.read(
            replicas[0].layout.meta_addr(2), 16)
        return RsLayout.unpack_meta(meta1)[0], RsLayout.unpack_meta(meta2)[0]
    tag1, tag2 = drive(sim, main())
    assert tag2 > tag1


def test_get_write_back_propagates_latest(sim, app_fabric, replicas, drive):
    """ABD's read write-phase: after a GET, a majority stores v_max."""
    # Manually install a newer version at ONE replica only.
    rep = replicas[0]
    addr = rep.prism.freelist(rep.freelist_id).pop()
    from repro.apps.common import make_tag
    new_tag = make_tag(99, 7)
    rep.prism.space.write(addr, RsLayout.pack_buffer(new_tag, b"N" * 64))
    rep.prism.space.write(rep.layout.meta_addr(9),
                          RsLayout.pack_meta(new_tag, addr))
    client = _client(sim, app_fabric, replicas)
    def main():
        value = yield from client.get(9)
        yield sim.timeout(200)
        return value
    assert drive(sim, main()) == b"N" * 64
    # Now at least a majority must hold the new tag.
    count = 0
    for rep in replicas:
        tag, _ = RsLayout.unpack_meta(
            rep.prism.space.read(rep.layout.meta_addr(9), 16))
        if tag == new_tag:
            count += 1
    assert count >= 2


def test_concurrent_writers_converge(sim, app_fabric, replicas):
    a = _client(sim, app_fabric, replicas, cid=1, host="c0")
    b = _client(sim, app_fabric, replicas, cid=2, host="c1")
    def writer(client, value):
        for _ in range(5):
            yield from client.put(4, value)
    sim.spawn(writer(a, b"A" * 64))
    sim.spawn(writer(b, b"B" * 64))
    sim.run(until=1e5)
    reader = _client(sim, app_fabric, replicas, cid=3, host="c2")
    holder = {}
    def read():
        holder["v"] = yield from reader.get(4)
    sim.run_until_complete(sim.spawn(read()), limit=1e6)
    assert holder["v"] in (b"A" * 64, b"B" * 64)


def test_linearizability_read_after_write(sim, app_fabric, replicas, drive):
    """A GET that starts after a PUT completes must see it (or newer)."""
    writer = _client(sim, app_fabric, replicas, cid=1, host="c0")
    reader = _client(sim, app_fabric, replicas, cid=2, host="c1")
    def main():
        yield from writer.put(6, b"W" * 64)
        value = yield from reader.get(6)
        return value
    assert drive(sim, main()) == b"W" * 64


def test_operation_is_two_round_trips_per_replica(sim, app_fabric,
                                                  replicas):
    client = _client(sim, app_fabric, replicas)
    holder = {}
    def main():
        before = sum(c.round_trips for c in client.clients)
        yield from client.get(1)
        yield sim.timeout(50)  # let quorum stragglers finish
        holder["rts"] = sum(c.round_trips for c in client.clients) - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    # read phase + write phase to each of 3 replicas = 6 requests.
    assert holder["rts"] == 6


def test_value_sizes_roundtrip(sim, app_fabric, drive):
    reps = [PrismRsReplica(sim, app_fabric, f"r{i}", SoftwarePrismBackend,
                           n_blocks=4, block_size=128)
            for i in range(3)]
    for rep in reps:
        rep.load(0, b"\x00" * 128)
    client = PrismRsClient(sim, app_fabric, "c0", reps, client_id=1)
    payload = bytes(range(128))
    def main():
        yield from client.put(0, payload)
        return (yield from client.get(0))
    assert drive(sim, main()) == payload
