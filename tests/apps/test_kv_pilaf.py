"""Pilaf baseline: two-READ gets, RPC puts, real CRC verification."""

import pytest

from repro.apps.kv.crc import crc_bytes, crc_time_us, verify
from repro.apps.kv.pilaf import PilafClient, PilafServer
from repro.prism import HardwareRdmaBackend, SoftwareRdmaBackend


@pytest.fixture
def pilaf(sim, app_fabric):
    return PilafServer(sim, app_fabric, "server", HardwareRdmaBackend,
                       n_keys=32, max_value_bytes=64)


def test_crc_roundtrip():
    assert verify(b"hello", crc_bytes(b"hello"))
    assert not verify(b"hellx", crc_bytes(b"hello"))


def test_crc_time_scales():
    assert crc_time_us(512) > crc_time_us(16)


def test_get_missing_returns_none(sim, app_fabric, pilaf, drive):
    client = PilafClient(sim, app_fabric, "c0", pilaf)
    def main():
        return (yield from client.get(3))
    assert drive(sim, main()) is None


def test_put_then_get(sim, app_fabric, pilaf, drive):
    client = PilafClient(sim, app_fabric, "c0", pilaf)
    def main():
        yield from client.put(3, b"pilaf-value")
        return (yield from client.get(3))
    assert drive(sim, main()) == b"pilaf-value"


def test_loaded_data_visible(sim, app_fabric, pilaf, drive):
    pilaf.load(7, b"seeded")
    client = PilafClient(sim, app_fabric, "c0", pilaf)
    def main():
        return (yield from client.get(7))
    assert drive(sim, main()) == b"seeded"


def test_overwrite_in_place(sim, app_fabric, pilaf, drive):
    pilaf.load(5, b"old")
    client = PilafClient(sim, app_fabric, "c0", pilaf)
    def main():
        yield from client.put(5, b"new")
        return (yield from client.get(5))
    assert drive(sim, main()) == b"new"


def test_get_is_two_round_trips(sim, app_fabric, pilaf):
    pilaf.load(1, b"v")
    client = PilafClient(sim, app_fabric, "c0", pilaf)
    holder = {}
    def main():
        before = client.client.round_trips
        yield from client.get(1)
        holder["rts"] = client.client.round_trips - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert holder["rts"] == 2


def test_corrupted_slot_crc_detected(sim, app_fabric, pilaf, drive):
    """Flip a byte in a slot CRC: the client must detect it rather
    than follow a bogus pointer."""
    pilaf.load(2, b"value")
    slot = pilaf.layout.slot_addr(
        pilaf.slot_index((2).to_bytes(8, "little")))
    crc = bytearray(pilaf.prism.space.read(slot + 8, 8))
    crc[0] ^= 0xFF
    pilaf.prism.space.write(slot + 8, bytes(crc))
    client = PilafClient(sim, app_fabric, "c0", pilaf, max_probes=2)
    def main():
        return (yield from client.get(2))
    # The read never verifies; the client gives up after max_probes.
    assert drive(sim, main()) is None
    assert client.crc_failures > 0


def test_corrupted_extent_crc_detected(sim, app_fabric, pilaf, drive):
    pilaf.load(4, b"value")
    extent = pilaf.layout.extent_addr(
        pilaf._key_to_extent[(4).to_bytes(8, "little")])
    byte = bytearray(pilaf.prism.space.read(extent + 8, 1))
    byte[0] ^= 0xFF
    pilaf.prism.space.write(extent + 8, bytes(byte))
    client = PilafClient(sim, app_fabric, "c0", pilaf, max_probes=2)
    def main():
        return (yield from client.get(4))
    assert drive(sim, main()) is None
    assert client.crc_failures > 0


def test_put_goes_through_rpc_not_rdma(sim, app_fabric, pilaf, drive):
    client = PilafClient(sim, app_fabric, "c0", pilaf)
    def main():
        before = pilaf.rpc.calls_served
        yield from client.put(9, b"v")
        return pilaf.rpc.calls_served - before
    assert drive(sim, main()) == 1


def test_runs_on_software_rdma_backend(sim, app_fabric, drive):
    server = PilafServer(sim, app_fabric, "server", SoftwareRdmaBackend,
                         n_keys=8, max_value_bytes=32)
    server.load(0, b"sw-rdma")
    client = PilafClient(sim, app_fabric, "c0", server)
    def main():
        return (yield from client.get(0))
    assert drive(sim, main()) == b"sw-rdma"


def test_software_rdma_get_slower_than_hardware(sim, app_fabric):
    hw = PilafServer(sim, app_fabric, "server", HardwareRdmaBackend,
                     n_keys=8, max_value_bytes=32)
    from repro.net.topology import RACK, make_fabric
    from repro.sim import Simulator
    sim2 = Simulator()
    fabric2 = make_fabric(sim2, RACK, ["server", "c0"])
    sw = PilafServer(sim2, fabric2, "server", SoftwareRdmaBackend,
                     n_keys=8, max_value_bytes=32)
    hw.load(0, b"v")
    sw.load(0, b"v")

    def timed(sim_, fabric_, server):
        client = PilafClient(sim_, fabric_, "c0", server)
        holder = {}
        def main():
            start = sim_.now
            yield from client.get(0)
            holder["lat"] = sim_.now - start
        sim_.run_until_complete(sim_.spawn(main()), limit=1e6)
        return holder["lat"]

    assert timed(sim2, fabric2, sw) > timed(sim, app_fabric, hw)
