"""PRISM-TX: OCC correctness, conflicts, protocol shape."""

import pytest

from repro.apps.tx import PrismTxClient, PrismTxServer
from repro.apps.tx.prism_tx import TxAborted
from repro.prism import SoftwarePrismBackend


@pytest.fixture
def server(sim, app_fabric):
    srv = PrismTxServer(sim, app_fabric, "server", SoftwarePrismBackend,
                        n_keys=32, value_size=64)
    for key in range(32):
        srv.load(key, bytes([key]) * 64)
    return srv


def _client(sim, fabric, server, cid=1, host="c0"):
    return PrismTxClient(sim, fabric, host, server, client_id=cid)


def test_read_only_transaction(sim, app_fabric, server, drive):
    client = _client(sim, app_fabric, server)
    def main():
        values = yield from client.run_transaction((2, 3), (), b"")
        return values
    values = drive(sim, main())
    assert values[2] == bytes([2]) * 64
    assert values[3] == bytes([3]) * 64


def test_rmw_transaction_commits(sim, app_fabric, server, drive):
    client = _client(sim, app_fabric, server)
    def main():
        yield from client.run_transaction((4,), (4,), b"W" * 64)
        values = yield from client.run_transaction((4,), (), b"")
        return values[4]
    assert drive(sim, main()) == b"W" * 64
    assert client.commits == 2


def test_write_only_transaction(sim, app_fabric, server, drive):
    client = _client(sim, app_fabric, server)
    def main():
        yield from client.run_transaction((), (5,), b"B" * 64)
        values = yield from client.run_transaction((5,), (), b"")
        return values[5]
    assert drive(sim, main()) == b"B" * 64


def test_multi_key_atomicity(sim, app_fabric, server, drive):
    """Both keys of a committed transaction carry the same value."""
    a = _client(sim, app_fabric, server, cid=1, host="c0")
    b = _client(sim, app_fabric, server, cid=2, host="c1")
    def workload(client, letter):
        for _ in range(8):
            yield from client.transact((6, 7), (6, 7), letter * 64)
    sim.spawn(workload(a, b"A"))
    sim.spawn(workload(b, b"B"))
    sim.run(until=1e6)
    reader = _client(sim, app_fabric, server, cid=3, host="c2")
    holder = {}
    def read():
        values, _retries = yield from reader.transact((6, 7), (), b"")
        holder["values"] = values
    sim.run_until_complete(sim.spawn(read()), limit=2e6)
    assert holder["values"][6] == holder["values"][7]


def test_conflicting_writer_aborts_reader(sim, app_fabric, server, drive):
    """If a newer-TS write prepares between a read and its validation,
    the reader aborts."""
    reader = _client(sim, app_fabric, server, cid=1, host="c0")
    writer = _client(sim, app_fabric, server, cid=2, host="c1")

    def main():
        # Interleave: reader executes reads, writer commits, then the
        # reader validates — must raise TxAborted.
        read_versions, values = yield from reader._execute_reads((8,))
        yield from writer.run_transaction((8,), (8,), b"X" * 64)
        ts = reader.clock.timestamp(read_versions.values())
        with pytest.raises(TxAborted):
            yield from reader._prepare((8,), (8,), read_versions, ts)
        return True

    assert drive(sim, main())
    assert reader.aborts == 0  # _prepare itself does not count; transact does


def test_transact_retries_until_commit(sim, app_fabric, server):
    clients = [_client(sim, app_fabric, server, cid=i + 1, host=f"c{i}")
               for i in range(4)]
    committed = []
    def workload(client):
        for _ in range(5):
            _values, retries = yield from client.transact((1,), (1,), b"R" * 64)
            committed.append(retries)
    for client in clients:
        sim.spawn(workload(client))
    sim.run(until=1e6)
    assert len(committed) == 20  # everyone eventually commits
    assert sum(c.commits for c in clients) == 20


def test_timestamps_strictly_increase_per_client(sim, app_fabric, server,
                                                 drive):
    client = _client(sim, app_fabric, server)
    def main():
        ts = []
        for _ in range(5):
            ts.append(client.clock.timestamp())
            yield sim.timeout(0.1)
        return ts
    stamps = drive(sim, main())
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 5


def test_commit_is_three_requests(sim, app_fabric, server):
    """Exec (1) + prepare (1) + commit (1): §8.2's two-round-trip commit
    after a one-round-trip execution."""
    client = _client(sim, app_fabric, server)
    holder = {}
    def main():
        before = client.client.round_trips
        yield from client.run_transaction((9,), (9,), b"T" * 64)
        holder["rts"] = client.client.round_trips - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert holder["rts"] == 3


def test_aborted_write_does_not_change_value(sim, app_fabric, server, drive):
    reader = _client(sim, app_fabric, server, cid=1, host="c0")
    writer = _client(sim, app_fabric, server, cid=2, host="c1")

    def main():
        versions, _ = yield from writer._execute_reads((10,))
        # Another client commits first.
        yield from reader.run_transaction((10,), (10,), b"FIRST!" + b"x" * 58)
        ts = writer.clock.timestamp(versions.values())
        with pytest.raises(TxAborted):
            yield from writer._prepare((10,), (10,), versions, ts)
        values = yield from reader.run_transaction((10,), (), b"")
        return values[10]

    assert drive(sim, main()) == b"FIRST!" + b"x" * 58


def test_reads_recover_after_abort_advances_c(sim, app_fabric, server,
                                              drive):
    """After an abort leaves PW raised, C-advancement (§8.2) keeps
    subsequent readers validating successfully."""
    a = _client(sim, app_fabric, server, cid=1, host="c0")
    b = _client(sim, app_fabric, server, cid=2, host="c1")

    def main():
        # Force an abort for client a on key 11 after its write check:
        # execute reads, let b commit, then prepare (write validation
        # passes, read validation fails -> abort advances C).
        versions, _ = yield from a._execute_reads((11,))
        yield from b.run_transaction((11,), (11,), b"B" * 64)
        ts = a.clock.timestamp(versions.values())
        try:
            yield from a._prepare((11,), (11,), versions, ts)
        except TxAborted:
            pass
        # A fresh reader must still be able to commit a read of key 11.
        values = yield from b.run_transaction((11,), (), b"")
        return values[11]

    assert drive(sim, main()) == b"B" * 64
