"""The remote B-tree: structure, traversal modes, updates."""

import pytest

from repro.apps.btree import BTreeClient, BTreeServer
from repro.prism import HardwarePrismBackend, SoftwarePrismBackend

N_KEYS = 200


@pytest.fixture
def btree(sim, app_fabric):
    server = BTreeServer(sim, app_fabric, "server", HardwarePrismBackend,
                         fanout=8, max_value_bytes=64)
    items = [(key * 3, f"value-{key}".encode()) for key in range(N_KEYS)]
    server.build(items)
    return server


def test_build_requires_items(sim, app_fabric):
    server = BTreeServer(sim, app_fabric, "server", HardwarePrismBackend)
    with pytest.raises(ValueError):
        server.build([])


def test_tree_has_multiple_levels(btree):
    assert btree.height >= 3  # 200 keys at fanout 8


@pytest.mark.parametrize("mode", BTreeClient.MODES)
def test_get_every_key(sim, app_fabric, btree, drive, mode):
    client = BTreeClient(sim, app_fabric, "c0", btree)
    def main():
        values = []
        for key in (0, 3, 150, 597):
            values.append((yield from client.get(key, mode=mode)))
        return values
    values = drive(sim, main())
    assert values == [b"value-0", b"value-1", b"value-50", b"value-199"]


@pytest.mark.parametrize("mode", BTreeClient.MODES)
def test_get_missing_key(sim, app_fabric, btree, drive, mode):
    client = BTreeClient(sim, app_fabric, "c0", btree)
    def main():
        return (yield from client.get(1, mode=mode))  # between 0 and 3
    assert drive(sim, main()) is None


def test_round_trip_counts_by_mode(sim, app_fabric, btree):
    """The paper's round-trip story: h+2 cold, 2 cached, 1 with PRISM."""
    client = BTreeClient(sim, app_fabric, "c0", btree)
    counts = {}
    def main():
        # Warm the cache with one traversal first.
        yield from client.get(30, mode="rdma-cache")
        for mode in BTreeClient.MODES:
            before = client.round_trips()
            value = yield from client.get(30, mode=mode)
            assert value == b"value-10"
            counts[mode] = client.round_trips() - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert counts["rdma"] == btree.height + 2
    assert counts["rdma-cache"] == 2
    assert counts["prism-cache"] == 1


def test_latency_ordering_by_mode(sim, app_fabric, btree):
    client = BTreeClient(sim, app_fabric, "c0", btree)
    latencies = {}
    def main():
        yield from client.get(60, mode="rdma-cache")  # warm cache
        for mode in ("rdma", "rdma-cache", "prism-cache"):
            start = sim.now
            yield from client.get(60, mode=mode)
            latencies[mode] = sim.now - start
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert (latencies["prism-cache"] < latencies["rdma-cache"]
            < latencies["rdma"])


def test_update_then_get(sim, app_fabric, btree, drive):
    client = BTreeClient(sim, app_fabric, "c0", btree)
    def main():
        installed = yield from client.update(30, b"fresh!")
        value = yield from client.get(30, mode="prism-cache")
        return installed, value
    installed, value = drive(sim, main())
    assert installed
    assert value == b"fresh!"


def test_update_keeps_cached_slots_valid(sim, app_fabric, btree, drive):
    """Out-of-place updates never move leaf slots: a cache warmed
    before an update still serves correct reads after it (the reason
    PRISM makes index caching sound)."""
    reader = BTreeClient(sim, app_fabric, "c0", btree)
    writer = BTreeClient(sim, app_fabric, "c1", btree)
    def main():
        first = yield from reader.get(90, mode="prism-cache")  # warm
        yield from writer.update(90, b"changed")
        second = yield from reader.get(90, mode="prism-cache")
        return first, second
    first, second = drive(sim, main())
    assert first == b"value-30"
    assert second == b"changed"


def test_update_missing_key_raises(sim, app_fabric, btree, drive):
    client = BTreeClient(sim, app_fabric, "c0", btree)
    def main():
        with pytest.raises(KeyError):
            yield from client.update(1, b"x")
        return True
    assert drive(sim, main())


def test_concurrent_updates_last_writer_wins(sim, app_fabric, btree):
    a = BTreeClient(sim, app_fabric, "c0", btree)
    b = BTreeClient(sim, app_fabric, "c1", btree)
    def writer(client, payload):
        yield from client.update(120, payload)
    sim.spawn(writer(a, b"from-a"))
    sim.spawn(writer(b, b"from-b"))
    sim.run(until=1e5)
    reader = BTreeClient(sim, app_fabric, "c2", btree)
    holder = {}
    def read():
        holder["v"] = yield from reader.get(120, mode="rdma")
    sim.run_until_complete(sim.spawn(read()), limit=2e5)
    assert holder["v"] in (b"from-a", b"from-b")


def test_every_key_reachable_exhaustive(sim, app_fabric, btree):
    """Regression: subtree separators must be subtree *minimums* — a
    separator taken from an inner child's keys[0] orphans that child's
    first leaf (caught by the bench sweep)."""
    client = BTreeClient(sim, app_fabric, "c0", btree)
    missing = []
    def main():
        for key in range(N_KEYS):
            value = yield from client.get(key * 3, mode="rdma-cache")
            if value != f"value-{key}".encode():
                missing.append(key)
    sim.run_until_complete(sim.spawn(main()), limit=1e8)
    assert missing == []


def test_variable_length_values(sim, app_fabric, drive):
    from repro.sim import Simulator
    server = BTreeServer(sim, app_fabric, "r0", SoftwarePrismBackend,
                         fanout=4, max_value_bytes=128)
    server.build([(1, b"s"), (2, b"m" * 40), (3, b"l" * 128)])
    client = BTreeClient(sim, app_fabric, "c0", server)
    def main():
        out = []
        for key in (1, 2, 3):
            out.append((yield from client.get(key, mode="prism-cache")))
        return out
    assert drive(sim, main()) == [b"s", b"m" * 40, b"l" * 128]


def test_single_item_tree(sim, app_fabric, drive):
    server = BTreeServer(sim, app_fabric, "r1", HardwarePrismBackend,
                         fanout=4, max_value_bytes=16)
    server.build([(42, b"only")])
    assert server.height == 1
    client = BTreeClient(sim, app_fabric, "c3", server)
    def main():
        hit = yield from client.get(42, mode="rdma")
        miss = yield from client.get(41, mode="rdma")
        return hit, miss
    hit, miss = drive(sim, main())
    assert hit == b"only"
    assert miss is None


def test_small_fanout_deep_tree(sim, app_fabric, drive):
    server = BTreeServer(sim, app_fabric, "r2", HardwarePrismBackend,
                         fanout=3, max_value_bytes=16, capacity=16384)
    n = 120
    server.build([(k, bytes([k % 250]) * 4) for k in range(n)])
    assert server.height >= 4
    client = BTreeClient(sim, app_fabric, "c4", server)
    def main():
        for key in range(0, n, 7):
            value = yield from client.get(key, mode="rdma-cache")
            assert value == bytes([key % 250]) * 4, key
        return True
    assert drive(sim, main())
