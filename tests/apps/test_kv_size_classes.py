"""PRISM-KV with §3.2 power-of-two size-class free lists."""

import pytest

from repro.apps.kv import PrismKvClient, PrismKvServer
from repro.prism import SoftwarePrismBackend


@pytest.fixture
def kv(sim, app_fabric):
    return PrismKvServer(sim, app_fabric, "server", SoftwarePrismBackend,
                         n_keys=32, max_value_bytes=480,
                         spare_buffers=64, size_classes=True,
                         min_size_class=64)


def test_classes_installed(kv):
    # entries up to 16 + 8 + 480 = 504 B -> classes 64..512.
    assert kv.allocator is not None
    assert kv.allocator.classes == [64, 128, 256, 512]


def test_small_and_large_values_roundtrip(sim, app_fabric, kv, drive):
    client = PrismKvClient(sim, app_fabric, "c0", kv)
    def main():
        yield from client.put(1, b"tiny")
        yield from client.put(2, b"x" * 480)
        return ((yield from client.get(1)), (yield from client.get(2)))
    small, large = drive(sim, main())
    assert small == b"tiny"
    assert large == b"x" * 480


def test_allocations_go_to_tight_class(sim, app_fabric, kv, drive):
    client = PrismKvClient(sim, app_fabric, "c0", kv)
    small_class = kv.allocator.freelist_for(16 + 8 + 4)
    large_class = kv.allocator.freelist_for(16 + 8 + 480)
    small_before = kv.prism.freelist(small_class).total_popped
    large_before = kv.prism.freelist(large_class).total_popped
    def main():
        yield from client.put(3, b"abcd")        # 28 B entry -> 64 B class
        yield from client.put(4, b"y" * 480)     # 504 B entry -> 512 B class
    drive(sim, main())
    assert kv.prism.freelist(small_class).total_popped == small_before + 1
    assert kv.prism.freelist(large_class).total_popped == large_before + 1


def test_retired_buffers_return_to_their_class(sim, app_fabric, kv, drive):
    client = PrismKvClient(sim, app_fabric, "c0", kv, recycle_batch=1)
    small_class = kv.allocator.freelist_for(16 + 8 + 4)
    def main():
        yield from client.put(5, b"aaaa")
        yield from client.put(5, b"bbbb")  # retires the first 64 B buffer
        yield from client.recycler.flush(small_class)
        yield from kv.recycler.flush()
    drive(sim, main())
    qp = kv.prism.freelist(small_class)
    assert qp.total_posted > qp.total_popped - 2  # small buffer came home
    assert kv.recycler.buffers_recycled >= 1


def test_load_respects_classes(sim, app_fabric, kv, drive):
    kv.load(9, b"z" * 400)  # entry 424 B -> 512 class
    client = PrismKvClient(sim, app_fabric, "c0", kv)
    def main():
        return (yield from client.get(9))
    assert drive(sim, main()) == b"z" * 400


def test_load_reclass_on_growth(sim, app_fabric, kv, drive):
    """Reloading a key with a bigger value must move buffer classes."""
    kv.load(10, b"s")           # 64 B class
    kv.load(10, b"L" * 400)     # must move to the 512 B class
    client = PrismKvClient(sim, app_fabric, "c0", kv)
    def main():
        return (yield from client.get(10))
    assert drive(sim, main()) == b"L" * 400


def test_fragmentation_bounded(kv):
    for entry in (29, 65, 130, 500):
        cls = kv.allocator.class_for(entry)
        assert cls < 2 * max(entry, 64)
