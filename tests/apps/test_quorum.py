"""The quorum combinator used by the replicated stores."""

import pytest

from repro.apps.blockstore.quorum import QuorumError, quorum


def _op(sim, delay, value=None, fail=False):
    def gen():
        yield sim.timeout(delay)
        if fail:
            raise RuntimeError("replica down")
        return value
    return gen()


def test_returns_after_need_successes(sim, drive):
    def main():
        replies = yield from quorum(
            sim, [_op(sim, 1, "a"), _op(sim, 2, "b"), _op(sim, 50, "c")],
            need=2)
        return replies, sim.now
    replies, when = drive(sim, main())
    assert when == 2.0  # did not wait for the 50 µs straggler
    assert sorted(replies) == [(0, "a"), (1, "b")]


def test_straggler_still_completes(sim, drive):
    done = []
    def slow():
        yield sim.timeout(10)
        done.append(True)
        return "late"
    def main():
        yield from quorum(sim, [_op(sim, 1, "x"), slow()], need=1)
        return sim.now
    assert drive(sim, main()) == 1.0
    sim.run()  # background completion
    assert done == [True]


def test_tolerates_failures_below_threshold(sim, drive):
    def main():
        replies = yield from quorum(
            sim, [_op(sim, 1, fail=True), _op(sim, 2, "ok1"),
                  _op(sim, 3, "ok2")], need=2)
        return [v for _i, v in replies]
    assert drive(sim, main()) == ["ok1", "ok2"]


def test_too_many_failures_raise(sim, drive):
    def main():
        with pytest.raises(QuorumError):
            yield from quorum(
                sim, [_op(sim, 1, fail=True), _op(sim, 2, fail=True),
                      _op(sim, 9, "ok")], need=2)
        return "raised"
    assert drive(sim, main()) == "raised"


def test_need_exceeding_total_rejected(sim, drive):
    def main():
        with pytest.raises(QuorumError, match="need 3 of only 2"):
            yield from quorum(sim, [_op(sim, 1), _op(sim, 1)], need=3)
        return True
    assert drive(sim, main())


def test_indices_identify_replicas(sim, drive):
    def main():
        replies = yield from quorum(
            sim, [_op(sim, 3, "slow"), _op(sim, 1, "fast")], need=1)
        return replies
    assert drive(sim, main()) == [(1, "fast")]
