"""Sharded PRISM-TX: cross-partition transactions."""

from itertools import count

import pytest

from repro.apps.tx import PrismTxServer
from repro.apps.tx.sharded import ShardedPrismTxClient, load_sharded
from repro.prism import SoftwarePrismBackend
from repro.sim import Simulator
from repro.net.topology import RACK, make_fabric
from repro.verify.serializability import (
    CommittedTxn,
    check_timestamp_serializable,
)

N_SHARDS = 3
N_KEYS = 12  # global keys, 4 per shard


@pytest.fixture
def sharded(sim):
    hosts = [f"shard{i}" for i in range(N_SHARDS)] + [
        f"c{i}" for i in range(4)]
    fabric = make_fabric(sim, RACK, hosts)
    servers = [PrismTxServer(sim, fabric, f"shard{i}", SoftwarePrismBackend,
                             n_keys=N_KEYS // N_SHARDS + 1, value_size=16)
               for i in range(N_SHARDS)]
    initial = {}
    for key in range(N_KEYS):
        value = b"init" + bytes([65 + key]) * 12
        initial[key] = value
        load_sharded(servers, key, value)
    return fabric, servers, initial


def test_key_routing(sim, sharded):
    fabric, servers, initial = sharded
    client = ShardedPrismTxClient(sim, fabric, "c0", servers, client_id=1)
    assert client.shard_of(0) == 0
    assert client.shard_of(4) == 1
    assert client.local_key(7) == 2


def test_single_shard_transaction(sim, sharded, drive):
    fabric, servers, initial = sharded
    client = ShardedPrismTxClient(sim, fabric, "c0", servers, client_id=1)
    def main():
        values = yield from client.run_transaction((0, 3), (0, 3),
                                                   b"S" * 16)
        return values
    values = drive(sim, main())
    assert values[0] == initial[0]
    assert values[3] == initial[3]


def test_cross_shard_transaction(sim, sharded, drive):
    fabric, servers, initial = sharded
    client = ShardedPrismTxClient(sim, fabric, "c0", servers, client_id=1)
    def main():
        # keys 0, 1, 2 live on three different shards
        yield from client.run_transaction((0, 1, 2), (0, 1, 2), b"X" * 16)
        values = yield from client.run_transaction((0, 1, 2), (), b"")
        return values
    values = drive(sim, main())
    assert values[0] == values[1] == values[2] == b"X" * 16


def test_cross_shard_atomicity_under_concurrency(sim, sharded):
    """Concurrent cross-shard writers: readers always see one
    transaction's values on both keys (all-or-nothing across shards)."""
    fabric, servers, initial = sharded
    a = ShardedPrismTxClient(sim, fabric, "c0", servers, client_id=1)
    b = ShardedPrismTxClient(sim, fabric, "c1", servers, client_id=2)
    keys = (1, 2)  # two different shards

    def writer(client, letter):
        for _ in range(6):
            yield from client.transact(keys, keys, letter * 16)

    sim.spawn(writer(a, b"A"))
    sim.spawn(writer(b, b"B"))
    sim.run(until=1e6)

    reader = ShardedPrismTxClient(sim, fabric, "c2", servers, client_id=3)
    holder = {}
    def read():
        values, _ = yield from reader.transact(keys, (), b"")
        holder["values"] = values
    sim.run_until_complete(sim.spawn(read()), limit=2e6)
    assert holder["values"][1] == holder["values"][2]


def test_cross_shard_serializability(sim, sharded):
    fabric, servers, initial = sharded
    committed = []
    ids = count(1)
    clients = []
    for i in range(4):
        client = ShardedPrismTxClient(sim, fabric, f"c{i}", servers,
                                      client_id=i + 1)
        client.on_commit = (
            lambda ts, reads, writes, start, finish: committed.append(
                CommittedTxn(next(ids), ts, reads, writes, start, finish)))
        clients.append(client)

    from repro.sim import SeededRng
    def worker(index, client):
        rng = SeededRng(31).fork(index).stream("txn")
        for txn_index in range(8):
            keys = tuple(sorted(rng.sample(range(N_KEYS), 2)))
            payload = f"c{index}t{txn_index}".encode().ljust(16, b".")
            yield from client.transact(keys, keys, payload)

    processes = [sim.spawn(worker(i, c)) for i, c in enumerate(clients)]
    waiter = sim.spawn((lambda done: (yield done))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e7)
    assert len(committed) == 32
    check_timestamp_serializable(committed, initial)


def test_conflicting_cross_shard_aborts_and_retries(sim, sharded, drive):
    fabric, servers, initial = sharded
    a = ShardedPrismTxClient(sim, fabric, "c0", servers, client_id=1)
    b = ShardedPrismTxClient(sim, fabric, "c1", servers, client_id=2)
    from repro.apps.tx.prism_tx import TxAborted
    def main():
        versions, _ = yield from a._execute_reads((1, 2))
        # b commits a conflicting cross-shard transaction first.
        yield from b.transact((1, 2), (1, 2), b"B" * 16)
        ts = a.clock.timestamp(versions.values())
        with pytest.raises(TxAborted):
            yield from a._prepare((1, 2), (1, 2), versions, ts)
        # Retrying from scratch succeeds.
        values, retries = yield from a.transact((1, 2), (1, 2), b"A" * 16)
        return values[1]
    assert drive(sim, main()) == b"B" * 16
