"""Fixtures building small application systems on a rack fabric."""

import pytest

from repro.net.topology import RACK, make_fabric
from repro.sim import Simulator


@pytest.fixture
def app_fabric(sim):
    hosts = ["server", "r0", "r1", "r2"] + [f"c{i}" for i in range(6)]
    return make_fabric(sim, RACK, hosts)
