"""PRISM-KV behaviour: gets, puts, versions, collisions, concurrency."""

import pytest

from repro.apps.kv import PrismKvClient, PrismKvServer
from repro.prism import SoftwarePrismBackend, HardwarePrismBackend


@pytest.fixture
def kv(sim, app_fabric):
    server = PrismKvServer(sim, app_fabric, "server", SoftwarePrismBackend,
                           n_keys=64, max_value_bytes=128)
    return server


def _client(sim, fabric, server, host="c0"):
    return PrismKvClient(sim, fabric, host, server)


def test_get_missing_key_returns_none(sim, app_fabric, kv, drive):
    client = _client(sim, app_fabric, kv)
    def main():
        return (yield from client.get(5))
    assert drive(sim, main()) is None


def test_put_then_get(sim, app_fabric, kv, drive):
    client = _client(sim, app_fabric, kv)
    def main():
        yield from client.put(5, b"value-5")
        return (yield from client.get(5))
    assert drive(sim, main()) == b"value-5"


def test_loaded_data_visible(sim, app_fabric, kv, drive):
    kv.load(9, b"preloaded")
    client = _client(sim, app_fabric, kv)
    def main():
        return (yield from client.get(9))
    assert drive(sim, main()) == b"preloaded"


def test_overwrite(sim, app_fabric, kv, drive):
    kv.load(3, b"old")
    client = _client(sim, app_fabric, kv)
    def main():
        yield from client.put(3, b"new")
        return (yield from client.get(3))
    assert drive(sim, main()) == b"new"


def test_variable_length_values(sim, app_fabric, kv, drive):
    client = _client(sim, app_fabric, kv)
    def main():
        yield from client.put(1, b"s")
        yield from client.put(2, b"x" * 128)
        short = yield from client.get(1)
        long = yield from client.get(2)
        return short, long
    short, long = drive(sim, main())
    assert short == b"s"
    assert long == b"x" * 128


def test_version_monotonically_increases(sim, app_fabric, kv, drive):
    from repro.apps.kv.layout import KvLayout
    client = _client(sim, app_fabric, kv)
    def main():
        yield from client.put(4, b"a")
        slot = kv.layout.slot_addr(kv.slot_index(KvLayout.encode_key(4)))
        ver1, _, _ = KvLayout.unpack_slot(kv.prism.space.read(slot, 24))
        yield from client.put(4, b"b")
        ver2, _, _ = KvLayout.unpack_slot(kv.prism.space.read(slot, 24))
        return ver1, ver2
    ver1, ver2 = drive(sim, main())
    assert ver2 > ver1


def test_put_retires_old_buffer(sim, app_fabric, kv, drive):
    kv.load(7, b"old-value")
    client = _client(sim, app_fabric, kv, host="c0")
    def main():
        yield from client.put(7, b"new-value")
        # force the retire report + daemon scan
        yield from client.recycler.flush(kv.freelist_id)
        yield from kv.recycler.flush()
        return kv.recycler.buffers_recycled
    assert drive(sim, main()) >= 1


def test_concurrent_puts_last_version_wins(sim, app_fabric, kv):
    a = _client(sim, app_fabric, kv, "c0")
    b = _client(sim, app_fabric, kv, "c1")
    kv.load(11, b"base")
    def writer(client, value):
        yield from client.put(11, value)
    sim.spawn(writer(a, b"from-a"))
    sim.spawn(writer(b, b"from-b"))
    sim.run(until=1e5)
    reader = _client(sim, app_fabric, kv, "c2")
    holder = {}
    def read():
        holder["value"] = yield from reader.get(11)
    sim.run_until_complete(sim.spawn(read()), limit=1e6)
    assert holder["value"] in (b"from-a", b"from-b")
    # Exactly one of the two PUTs may have been superseded; never both.
    assert a.put_superseded + b.put_superseded <= 1


def test_reads_never_tear_during_concurrent_writes(sim, app_fabric, kv):
    """Out-of-place updates: a GET sees exactly one complete version."""
    kv.load(2, b"A" * 64)
    writer_client = _client(sim, app_fabric, kv, "c0")
    reader_client = _client(sim, app_fabric, kv, "c1")
    torn = []

    def writer():
        for i in range(20):
            letter = bytes([66 + (i % 10)])
            yield from writer_client.put(2, letter * 64)

    def reader():
        for _ in range(30):
            value = yield from reader_client.get(2)
            if value is not None and len(set(value)) != 1:
                torn.append(value)

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run(until=1e6)
    assert torn == []


def test_fnv_hash_with_collisions_probes(sim, app_fabric, drive):
    server = PrismKvServer(sim, app_fabric, "server", HardwarePrismBackend,
                           n_keys=8, max_value_bytes=64, slots_per_key=2,
                           hash_fn="fnv")
    client = PrismKvClient(sim, app_fabric, "c0", server)
    def main():
        for key in range(8):
            yield from client.put(key, bytes([65 + key]) * 8)
        values = []
        for key in range(8):
            values.append((yield from client.get(key)))
        return values
    values = drive(sim, main())
    assert values == [bytes([65 + k]) * 8 for k in range(8)]


def test_get_latency_single_round_trip(sim, app_fabric, kv):
    """A PRISM-KV GET is one round trip (the paper's headline)."""
    kv.load(1, b"v")
    client = _client(sim, app_fabric, kv)
    holder = {}
    def main():
        before = client.client.round_trips
        yield from client.get(1)
        holder["round_trips"] = client.client.round_trips - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert holder["round_trips"] == 1


def test_put_is_two_round_trips(sim, app_fabric, kv):
    kv.load(1, b"v")
    client = _client(sim, app_fabric, kv)
    holder = {}
    def main():
        before = client.client.round_trips
        yield from client.put(1, b"w")
        holder["round_trips"] = client.client.round_trips - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert holder["round_trips"] == 2


def test_two_choice_hashing(sim, app_fabric, drive):
    """Each key has exactly two candidate slots; GETs need at most two
    indirect READ probes even under collisions."""
    from repro.prism import HardwarePrismBackend
    server = PrismKvServer(sim, app_fabric, "server", HardwarePrismBackend,
                           n_keys=16, max_value_bytes=32,
                           slots_per_key=2, hash_fn="two-choice")
    client = PrismKvClient(sim, app_fabric, "c0", server)
    assert client.max_probes == 2

    def main():
        stored = 0
        for key in range(16):
            try:
                yield from client.put(key, bytes([65 + key]) * 8)
                stored += 1
            except RuntimeError:
                pass  # both candidate slots taken: two-choice is lossy
        values = {}
        for key in range(16):
            values[key] = yield from client.get(key)
        return stored, values

    stored, values = drive(sim, main())
    assert stored >= 12  # two-choice places the vast majority
    for key, value in values.items():
        assert value is None or value == bytes([65 + key]) * 8
    hits = sum(1 for v in values.values() if v is not None)
    assert hits == stored


def test_candidate_slots_shapes():
    from repro.apps.kv.prism_kv import candidate_slots
    key = (7).to_bytes(8, "little")
    assert len(list(candidate_slots(key, 100, "identity"))) == 1
    assert len(list(candidate_slots(key, 100, "two-choice"))) in (1, 2)
    assert len(list(candidate_slots(key, 10, "fnv"))) == 10
    import pytest as _pytest
    with _pytest.raises(ValueError):
        list(candidate_slots(key, 10, "bogus"))
