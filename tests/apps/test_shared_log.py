"""The network-attached memory node's shared log."""

import pytest

from repro.apps.memnode import SharedLogClient, SharedLogNode
from repro.prism import HardwarePrismBackend, SoftwarePrismBackend


@pytest.fixture
def node(sim, app_fabric):
    return SharedLogNode(sim, app_fabric, "server", HardwarePrismBackend,
                         max_record_bytes=64, capacity=512)


def _client(sim, fabric, node, host="c0"):
    return SharedLogClient(sim, fabric, host, node)


def test_empty_log_reads_none(sim, app_fabric, node, drive):
    client = _client(sim, app_fabric, node)
    def main():
        return (yield from client.read_latest())
    assert drive(sim, main()) is None


def test_append_then_read(sim, app_fabric, node, drive):
    client = _client(sim, app_fabric, node)
    def main():
        seq = yield from client.append(b"first entry")
        latest = yield from client.read_latest()
        return seq, latest
    seq, latest = drive(sim, main())
    assert seq == 1
    assert latest == (1, b"first entry")


def test_sequence_numbers_increase(sim, app_fabric, node, drive):
    client = _client(sim, app_fabric, node)
    def main():
        seqs = []
        for i in range(5):
            seqs.append((yield from client.append(f"e{i}".encode())))
        return seqs
    assert drive(sim, main()) == [1, 2, 3, 4, 5]


def test_scan_newest_first(sim, app_fabric, node, drive):
    client = _client(sim, app_fabric, node)
    def main():
        for i in range(4):
            yield from client.append(f"entry-{i}".encode())
        return (yield from client.scan())
    records = drive(sim, main())
    assert [seq for seq, _ in records] == [4, 3, 2, 1]
    assert records[0][1] == b"entry-3"
    assert records[-1][1] == b"entry-0"


def test_scan_limit(sim, app_fabric, node, drive):
    client = _client(sim, app_fabric, node)
    def main():
        for i in range(6):
            yield from client.append(bytes([i]))
        return (yield from client.scan(limit=2))
    assert len(drive(sim, main())) == 2


def test_oversized_payload_rejected(sim, app_fabric, node, drive):
    client = _client(sim, app_fabric, node)
    def main():
        with pytest.raises(ValueError):
            yield from client.append(b"x" * 65)
        return True
    assert drive(sim, main())


def test_concurrent_appenders_never_lose_records(sim, app_fabric, node):
    """The CAS_GT race: every append gets a unique sequence number and
    every record is reachable from the head."""
    clients = [_client(sim, app_fabric, node, host=f"c{i}")
               for i in range(4)]
    appended = {}

    def writer(index, client):
        for i in range(8):
            payload = f"w{index}.{i}".encode()
            seq = yield from client.append(payload)
            appended[seq] = payload

    processes = [sim.spawn(writer(i, c)) for i, c in enumerate(clients)]
    waiter = sim.spawn((lambda d: (yield d))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e7)

    assert len(appended) == 32  # unique sequence numbers
    assert sorted(appended) == list(range(1, 33))
    assert sum(c.append_conflicts for c in clients) > 0  # races happened

    reader = _client(sim, app_fabric, node, host="c4")
    holder = {}
    def scan():
        holder["records"] = yield from reader.scan()
    sim.run_until_complete(sim.spawn(scan()), limit=1e7)
    records = holder["records"]
    assert [seq for seq, _ in records] == list(range(32, 0, -1))
    for seq, payload in records:
        assert appended[seq] == payload


def test_appends_use_one_round_trip_uncontended(sim, app_fabric, node):
    client = _client(sim, app_fabric, node)
    holder = {}
    def main():
        yield from client.append(b"warm")
        before = client.client.round_trips
        yield from client.append(b"measured")
        holder["rts"] = client.client.round_trips - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    # head read was cached from the prior append? No — append always
    # reads the head first, then one chained request: 2 round trips.
    assert holder["rts"] == 2


def test_works_on_software_backend(sim, app_fabric, drive):
    node = SharedLogNode(sim, app_fabric, "r0", SoftwarePrismBackend,
                         max_record_bytes=32, capacity=64)
    client = _client(sim, app_fabric, node)
    def main():
        yield from client.append(b"sw")
        return (yield from client.read_latest())
    assert drive(sim, main()) == (1, b"sw")


def test_scan_consistent_during_concurrent_appends(sim, app_fabric, node):
    """Scans race live appenders: every snapshot must be a clean suffix
    chain — strictly decreasing sequence numbers, intact payloads."""
    writers = [_client(sim, app_fabric, node, host=f"c{i}")
               for i in range(3)]
    reader = _client(sim, app_fabric, node, host="c3")
    bad_scans = []

    def writer(index, client):
        for i in range(10):
            yield from client.append(f"w{index}.{i}".encode())

    def scanner():
        for _ in range(6):
            records = yield from reader.scan(limit=8)
            seqs = [seq for seq, _ in records]
            if seqs != sorted(seqs, reverse=True):
                bad_scans.append(seqs)
            for seq, payload in records:
                if not payload.startswith(b"w"):
                    bad_scans.append((seq, payload))
            yield sim.timeout(5)

    processes = [sim.spawn(writer(i, c)) for i, c in enumerate(writers)]
    processes.append(sim.spawn(scanner()))
    waiter = sim.spawn((lambda d: (yield d))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e7)
    assert bad_scans == []
