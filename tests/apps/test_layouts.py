"""Application memory-layout codecs (KV, RS, TX, Pilaf, FaRM)."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.blockstore.layout import (
    AbdLockLayout,
    META_SIZE,
    META_TAG_MASK,
    RsLayout,
)
from repro.apps.kv.layout import KvLayout, SLOT_SIZE, SLOT_VER_MASK
from repro.apps.kv.pilaf import PilafLayout
from repro.apps.tx.layout import (
    CADDR_C_MASK,
    FarmLayout,
    LOCK_BIT,
    PRPW_PR_MASK,
    PRPW_PW_MASK,
    TxLayout,
)


class TestKvLayout:
    def test_slot_addressing(self):
        layout = KvLayout(table_base=1000, n_slots=10)
        assert layout.slot_addr(0) == 1000
        assert layout.slot_addr(3) == 1000 + 3 * SLOT_SIZE

    @given(ver=st.integers(min_value=0, max_value=2**64 - 1),
           key=st.binary(min_size=1, max_size=8),
           value=st.binary(max_size=64))
    def test_entry_roundtrip(self, ver, key, value):
        blob = KvLayout.pack_entry(ver, key, value)
        assert KvLayout.unpack_entry(blob) == (ver, key, value)
        assert KvLayout.entry_key(blob) == key
        assert KvLayout.entry_ver(blob) == ver

    @given(ver=st.integers(min_value=0, max_value=2**64 - 1),
           ptr=st.integers(min_value=0, max_value=2**64 - 1),
           bound=st.integers(min_value=0, max_value=2**64 - 1))
    def test_slot_roundtrip(self, ver, ptr, bound):
        blob = KvLayout.pack_slot(ver, ptr, bound)
        assert len(blob) == SLOT_SIZE
        assert KvLayout.unpack_slot(blob) == (ver, ptr, bound)

    def test_ver_mask_selects_version_only(self):
        blob = KvLayout.pack_slot(7, 0xAAAA, 99)
        as_int = int.from_bytes(blob, "little")
        assert (as_int & SLOT_VER_MASK) == 7

    def test_buffer_size_covers_maximum(self):
        layout = KvLayout(0, 1, max_key_bytes=8, max_value_bytes=512)
        entry = KvLayout.pack_entry(1, b"k" * 8, b"v" * 512)
        assert len(entry) == layout.buffer_bytes

    def test_key_encoding(self):
        assert KvLayout.encode_key(5) == (5).to_bytes(8, "little")
        assert KvLayout.encode_key(b"abcdefgh") == b"abcdefgh"


class TestRsLayout:
    def test_addr_field_is_dereference_target(self):
        layout = RsLayout(meta_base=500, n_blocks=4)
        assert layout.addr_field(2) == 500 + 2 * META_SIZE + 8

    @given(tag=st.integers(min_value=0, max_value=2**64 - 1),
           addr=st.integers(min_value=0, max_value=2**64 - 1))
    def test_meta_roundtrip(self, tag, addr):
        assert RsLayout.unpack_meta(RsLayout.pack_meta(tag, addr)) == (tag,
                                                                       addr)

    @given(tag=st.integers(min_value=0, max_value=2**64 - 1),
           value=st.binary(max_size=64))
    def test_buffer_roundtrip(self, tag, value):
        assert RsLayout.unpack_buffer(
            RsLayout.pack_buffer(tag, value)) == (tag, value)

    def test_tag_mask_low_half(self):
        blob = RsLayout.pack_meta(42, 0xFFFF)
        assert (int.from_bytes(blob, "little") & META_TAG_MASK) == 42


class TestAbdLockLayout:
    def test_field_addresses(self):
        layout = AbdLockLayout(blocks_base=0x1000, n_blocks=8,
                               block_size=512)
        assert layout.lock_addr(1) == 0x1000 + layout.block_stride
        assert layout.tag_addr(1) == layout.lock_addr(1) + 8

    @given(tag=st.integers(min_value=0, max_value=2**64 - 1),
           value=st.binary(max_size=32))
    def test_tagged_value_roundtrip(self, tag, value):
        blob = AbdLockLayout.pack_tagged_value(tag, value)
        assert AbdLockLayout.unpack_tagged_value(blob) == (tag, value)


class TestTxLayout:
    def test_pair_addresses_contiguous(self):
        layout = TxLayout(meta_base=0, n_keys=4)
        # [PR | PW] at +0 and [C | addr] at +16 are both CAS-able pairs.
        assert layout.prpw_addr(0) == 0
        assert layout.caddr_addr(0) == 16
        assert layout.addr_field(0) == 24

    def test_masks_partition_the_pairs(self):
        assert PRPW_PR_MASK | PRPW_PW_MASK == (1 << 128) - 1
        assert PRPW_PR_MASK & PRPW_PW_MASK == 0
        assert CADDR_C_MASK == (1 << 64) - 1

    @given(pr=st.integers(min_value=0, max_value=2**64 - 1),
           pw=st.integers(min_value=0, max_value=2**64 - 1))
    def test_prpw_roundtrip(self, pr, pw):
        assert TxLayout.unpack_prpw(TxLayout.pack_prpw(pr, pw)) == (pr, pw)

    def test_read_validation_concatenation_order(self):
        """(RC|TS) > (PW|PR) as 128-bit ints must mean: RC > PW, or
        RC == PW and TS > PR — the §8.2 single-CAS trick."""
        def as_int(low, high):
            return int.from_bytes(TxLayout.pack_prpw(low, high), "little")
        # RC == PW, TS > PR  -> greater
        assert as_int(5, 10) > as_int(4, 10)
        # RC == PW, TS <= PR -> not greater
        assert not as_int(4, 10) > as_int(4, 10)
        # RC < PW -> not greater regardless of TS
        assert not as_int(999, 9) > as_int(0, 10)

    @given(c=st.integers(min_value=0, max_value=2**63),
           key=st.integers(min_value=0, max_value=2**63),
           value=st.binary(max_size=64))
    def test_buffer_roundtrip(self, c, key, value):
        blob = TxLayout.pack_buffer(c, key, value)
        assert TxLayout.unpack_buffer(blob) == (c, key, value)


class TestFarmLayout:
    @given(version=st.integers(min_value=0, max_value=2**62),
           locked=st.booleans())
    def test_lockver_roundtrip(self, version, locked):
        blob = FarmLayout.pack_lockver(version, locked)
        assert FarmLayout.unpack_lockver(blob) == (version, locked)

    def test_lock_bit_is_msb(self):
        assert LOCK_BIT == 1 << 63
        blob = FarmLayout.pack_lockver(0, locked=True)
        assert blob[7] & 0x80

    def test_object_addressing(self):
        layout = FarmLayout(table_base=0, objects_base=4096, n_keys=4,
                            value_size=512)
        assert layout.object_addr(1) == 4096 + 520
        assert layout.slot_addr(2) == 16


class TestPilafLayout:
    def test_entry_stride(self):
        layout = PilafLayout(0, 0, 4, max_key_bytes=8, max_value_bytes=512)
        assert layout.entry_stride == 8 + 8 + 512 + 8

    def test_entry_crc_embedded(self):
        layout = PilafLayout(0, 0, 4, max_value_bytes=32)
        blob = layout.pack_entry(b"key12345", b"value")
        assert len(blob) == layout.entry_stride
        from repro.apps.kv.crc import verify
        assert verify(blob[:layout.entry_data_bytes],
                      blob[layout.entry_data_bytes:])

    def test_slot_crc(self):
        blob = PilafLayout.pack_slot(0xABCD)
        from repro.apps.kv.crc import verify
        assert verify(blob[:8], blob[8:])
