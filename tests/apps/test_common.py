"""Tags, masks, timestamps shared by the applications."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.common import (
    CLIENT_ID_BITS,
    bump_tag,
    field_mask,
    make_tag,
    split_tag,
)
from repro.apps.tx.timestamps import LooselySynchronizedClock
from repro.sim import Simulator


class TestTags:
    @given(counter=st.integers(min_value=0, max_value=2**47 - 1),
           client_id=st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, counter, client_id):
        assert split_tag(make_tag(counter, client_id)) == (counter, client_id)

    @given(c1=st.integers(min_value=0, max_value=2**40),
           c2=st.integers(min_value=0, max_value=2**40),
           id1=st.integers(min_value=0, max_value=2**16 - 1),
           id2=st.integers(min_value=0, max_value=2**16 - 1))
    def test_lexicographic_order(self, c1, c2, id1, id2):
        """Integer comparison of tags == lexicographic ⟨counter, id⟩."""
        t1, t2 = make_tag(c1, id1), make_tag(c2, id2)
        assert (t1 < t2) == ((c1, id1) < (c2, id2))

    def test_bump_strictly_greater_any_client(self):
        tag = make_tag(5, 99)
        for client_id in (0, 1, 99, 2**16 - 1):
            assert bump_tag(tag, client_id) > tag

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_tag(0, 1 << CLIENT_ID_BITS)
        with pytest.raises(ValueError):
            make_tag(1 << 48, 0)
        with pytest.raises(ValueError):
            make_tag(-1, 0)


class TestFieldMask:
    def test_low_field(self):
        assert field_mask(0, 8) == (1 << 64) - 1

    def test_high_field(self):
        assert field_mask(8, 8) == ((1 << 64) - 1) << 64

    def test_middle_field(self):
        mask = field_mask(2, 2)
        assert mask == 0xFFFF0000
        # Selects exactly those bytes of a little-endian operand.
        value = int.from_bytes(bytes([1, 2, 3, 4, 5, 6]), "little")
        masked = (value & mask).to_bytes(6, "little")
        assert masked == bytes([0, 0, 3, 4, 0, 0])

    def test_disjoint_fields_cover_word(self):
        assert field_mask(0, 8) | field_mask(8, 8) == (1 << 128) - 1
        assert field_mask(0, 8) & field_mask(8, 8) == 0


class TestLooselySynchronizedClock:
    def test_monotonic(self):
        sim = Simulator()
        clock = LooselySynchronizedClock(sim, client_id=1)
        stamps = [clock.timestamp() for _ in range(10)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 10

    def test_exceeds_floor(self):
        sim = Simulator()
        clock = LooselySynchronizedClock(sim, client_id=1)
        floor = make_tag(1_000_000, 7)
        ts = clock.timestamp([floor])
        assert ts > floor

    def test_distinct_clients_distinct_stamps(self):
        sim = Simulator()
        a = LooselySynchronizedClock(sim, client_id=1)
        b = LooselySynchronizedClock(sim, client_id=2)
        assert a.timestamp() != b.timestamp()

    def test_skew_applied(self):
        sim = Simulator()
        fast = LooselySynchronizedClock(sim, client_id=1, skew_us=500.0)
        slow = LooselySynchronizedClock(sim, client_id=1, skew_us=0.0)
        assert fast.timestamp() > slow.timestamp()
