"""FaRM baseline: three-phase commit behaviour."""

import pytest

from repro.apps.tx import FarmClient, FarmServer
from repro.apps.tx.layout import FarmLayout
from repro.prism import HardwareRdmaBackend


@pytest.fixture
def server(sim, app_fabric):
    srv = FarmServer(sim, app_fabric, "server", HardwareRdmaBackend,
                     n_keys=16, value_size=64)
    for key in range(16):
        srv.load(key, bytes([key]) * 64)
    return srv


def _client(sim, fabric, server, cid=1, host="c0"):
    return FarmClient(sim, fabric, host, server, client_id=cid, seed=cid)


def test_read_keys(sim, app_fabric, server, drive):
    client = _client(sim, app_fabric, server)
    def main():
        versions, values = yield from client.read_keys((1, 2))
        return versions, values
    versions, values = drive(sim, main())
    assert values[1] == bytes([1]) * 64
    assert versions[1] == 1


def test_commit_bumps_version_and_unlocks(sim, app_fabric, server, drive):
    client = _client(sim, app_fabric, server)
    def main():
        committed, _ = yield from client.run_transaction((3,), (3,),
                                                         b"N" * 64)
        versions, values = yield from client.read_keys((3,))
        return committed, versions[3], values[3]
    committed, version, value = drive(sim, main())
    assert committed
    assert version == 2
    assert value == b"N" * 64
    word = server.prism.space.read(server.layout.object_addr(3), 8)
    _ver, locked = FarmLayout.unpack_lockver(word)
    assert not locked


def test_stale_version_lock_fails(sim, app_fabric, server, drive):
    a = _client(sim, app_fabric, server, cid=1, host="c0")
    b = _client(sim, app_fabric, server, cid=2, host="c1")
    def main():
        versions, _ = yield from a.read_keys((4,))
        # b commits first, bumping the version.
        yield from b.transact((4,), (4,), b"B" * 64)
        committed, _ = yield from a.run_transaction((4,), (4,), b"A" * 64)
        return committed
    # a read version 1, but the lock phase sees version 2 -> abort.
    # run_transaction rereads inside itself; emulate the stale read by
    # driving the phases manually instead:
    def manual():
        versions, values = yield from a.read_keys((4,))
        yield from b.transact((4,), (4,), b"B" * 64)
        ok, _ = yield from a.rpc.call(
            server.host_name, FarmServer.LOCK_METHOD,
            ((1, 1), [(4, versions[4])]), request_payload_bytes=32)
        return ok
    assert drive(sim, manual()) is False


def test_locked_object_read_retries(sim, app_fabric, server):
    """Execution-phase reads spin while an object is locked."""
    word = server.prism.space.read(server.layout.object_addr(5), 8)
    version, _ = FarmLayout.unpack_lockver(word)
    server.prism.space.write(server.layout.object_addr(5),
                             FarmLayout.pack_lockver(version, locked=True))
    client = _client(sim, app_fabric, server)

    def unlocker():
        yield sim.timeout(30.0)
        server.prism.space.write(
            server.layout.object_addr(5),
            FarmLayout.pack_lockver(version, locked=False))

    holder = {}
    def main():
        start = sim.now
        yield from client.read_keys((5,))
        holder["elapsed"] = sim.now - start

    sim.spawn(unlocker())
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    assert holder["elapsed"] > 25.0


def test_transact_retry_on_conflict(sim, app_fabric, server):
    clients = [_client(sim, app_fabric, server, cid=i + 1, host=f"c{i}")
               for i in range(4)]
    done = []
    def workload(client):
        for _ in range(4):
            yield from client.transact((6,), (6,), bytes([client.client_id]) * 64)
        done.append(client.client_id)
    for client in clients:
        sim.spawn(workload(client))
    sim.run(until=1e6)
    assert len(done) == 4
    final_version, _ = FarmLayout.unpack_lockver(
        server.prism.space.read(server.layout.object_addr(6), 8))
    assert final_version == 1 + 16  # every commit bumped exactly once


def test_unlock_releases_without_install(sim, app_fabric, server, drive):
    client = _client(sim, app_fabric, server)
    def main():
        versions, _ = yield from client.read_keys((7,))
        ok, _ = yield from client.rpc.call(
            server.host_name, FarmServer.LOCK_METHOD,
            ((1, 9), [(7, versions[7])]), request_payload_bytes=32)
        assert ok
        yield from client.rpc.call(
            server.host_name, FarmServer.UNLOCK_METHOD,
            ((1, 9), [7]), request_payload_bytes=16)
        versions2, values2 = yield from client.read_keys((7,))
        return versions2[7], values2[7]
    version, value = drive(sim, main())
    assert version == 1  # unchanged
    assert value == bytes([7]) * 64


def test_commit_uses_two_rpcs(sim, app_fabric, server, drive):
    client = _client(sim, app_fabric, server)
    def main():
        before = server.rpc.calls_served
        yield from client.run_transaction((8,), (8,), b"C" * 64)
        return server.rpc.calls_served - before
    assert drive(sim, main()) == 2  # LOCK + UPDATE (validate is one-sided)
