"""ABDLOCK baseline: locking protocol behaviour."""

import pytest

from repro.apps.blockstore import AbdLockClient, AbdLockReplica
from repro.prism import HardwareRdmaBackend


@pytest.fixture
def replicas(sim, app_fabric):
    reps = [AbdLockReplica(sim, app_fabric, f"r{i}", HardwareRdmaBackend,
                           n_blocks=8, block_size=64)
            for i in range(3)]
    for block in range(8):
        for rep in reps:
            rep.load(block, bytes([block]) * 64)
    return reps


def _client(sim, fabric, replicas, cid=1, host="c0"):
    return AbdLockClient(sim, fabric, host, replicas, client_id=cid,
                         seed=cid)


def test_get_and_put(sim, app_fabric, replicas, drive):
    client = _client(sim, app_fabric, replicas)
    def main():
        initial = yield from client.get(2)
        yield from client.put(2, b"P" * 64)
        after = yield from client.get(2)
        return initial, after
    initial, after = drive(sim, main())
    assert initial == bytes([2]) * 64
    assert after == b"P" * 64


def test_locks_released_after_operation(sim, app_fabric, replicas, drive):
    client = _client(sim, app_fabric, replicas)
    def main():
        yield from client.put(1, b"x" * 64)
    drive(sim, main())
    for rep in replicas:
        lock = rep.prism.space.read_uint(rep.layout.lock_addr(1))
        assert lock == 0


def test_lock_blocks_competitor(sim, app_fabric, replicas):
    """Hold a lock manually; a client must retry until it is freed."""
    for rep in replicas:
        rep.prism.space.write_uint(rep.layout.lock_addr(3), 999)
    client = _client(sim, app_fabric, replicas, cid=1)

    def unlocker():
        yield sim.timeout(60.0)
        for rep in replicas:
            rep.prism.space.write_uint(rep.layout.lock_addr(3), 0)

    holder = {}
    def main():
        start = sim.now
        value = yield from client.get(3)
        holder["elapsed"] = sim.now - start
        return value

    sim.spawn(unlocker())
    process = sim.spawn(main())
    sim.run_until_complete(process, limit=1e6)
    assert holder["elapsed"] > 50.0
    assert client.lock_retries > 0


def test_mutual_exclusion_under_concurrency(sim, app_fabric, replicas):
    """Two writers to the same block serialize via locks: the stored
    value is always one writer's complete payload."""
    a = _client(sim, app_fabric, replicas, cid=1, host="c0")
    b = _client(sim, app_fabric, replicas, cid=2, host="c1")
    def writer(client, letter):
        for _ in range(6):
            yield from client.put(5, letter * 64)
    sim.spawn(writer(a, b"A"))
    sim.spawn(writer(b, b"B"))
    sim.run(until=1e6)
    for rep in replicas:
        data = rep.prism.space.read(rep.layout.tag_addr(5) + 8, 64)
        assert data in (b"A" * 64, b"B" * 64)
        assert rep.prism.space.read_uint(rep.layout.lock_addr(5)) == 0


def test_four_round_trips_per_operation(sim, app_fabric, replicas):
    client = _client(sim, app_fabric, replicas)
    holder = {}
    def main():
        before = sum(c.round_trips for c in client.clients)
        yield from client.get(0)
        holder["rts"] = sum(c.round_trips for c in client.clients) - before
    sim.run_until_complete(sim.spawn(main()), limit=1e6)
    # lock (3) + read (3) + write (3) + unlock (3): §7.2's four phases.
    assert holder["rts"] == 12


def test_read_after_write_linearizable(sim, app_fabric, replicas, drive):
    writer = _client(sim, app_fabric, replicas, cid=1, host="c0")
    reader = _client(sim, app_fabric, replicas, cid=2, host="c1")
    def main():
        yield from writer.put(7, b"L" * 64)
        return (yield from reader.get(7))
    assert drive(sim, main()) == b"L" * 64
