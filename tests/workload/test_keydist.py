"""Key distributions: bounds, determinism, skew shape."""

from collections import Counter

import pytest

from repro.workload.keydist import UniformKeys, ZipfKeys, make_distribution


class TestUniform:
    def test_bounds(self):
        dist = UniformKeys(100, seed=1)
        samples = [dist.sample() for _ in range(1000)]
        assert all(0 <= k < 100 for k in samples)

    def test_determinism(self):
        a = [UniformKeys(100, seed=7).sample() for _ in range(10)]
        b = [UniformKeys(100, seed=7).sample() for _ in range(10)]
        assert a == b

    def test_roughly_uniform(self):
        dist = UniformKeys(10, seed=3)
        counts = Counter(dist.sample() for _ in range(10_000))
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_sample_distinct(self):
        dist = UniformKeys(10, seed=2)
        keys = dist.sample_distinct(10)
        assert sorted(keys) == list(range(10))
        with pytest.raises(ValueError):
            dist.sample_distinct(11)


class TestZipf:
    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            ZipfKeys(10, -0.5)

    def test_zero_coefficient_is_uniformish(self):
        dist = ZipfKeys(10, 0.0, seed=5)
        counts = Counter(dist.sample() for _ in range(10_000))
        assert max(counts.values()) < 2.0 * min(counts.values())

    def test_skew_increases_with_coefficient(self):
        def hottest_fraction(coefficient):
            dist = ZipfKeys(1000, coefficient, seed=9)
            counts = Counter(dist.sample() for _ in range(20_000))
            return counts.most_common(1)[0][1] / 20_000
        assert (hottest_fraction(0.5) < hottest_fraction(0.99)
                < hottest_fraction(1.4))

    def test_high_skew_concentrates_mass(self):
        dist = ZipfKeys(4000, 1.2, seed=1)
        counts = Counter(dist.sample() for _ in range(20_000))
        assert counts.most_common(1)[0][1] / 20_000 > 0.10

    def test_clients_share_hot_keys(self):
        """Different sampling seeds, same permutation seed -> the same
        keys are hot for everyone (required for contention figures)."""
        a = ZipfKeys(1000, 1.2, seed=1, permutation_seed=42)
        b = ZipfKeys(1000, 1.2, seed=2, permutation_seed=42)
        hot_a = Counter(a.sample() for _ in range(5000)).most_common(1)[0][0]
        hot_b = Counter(b.sample() for _ in range(5000)).most_common(1)[0][0]
        assert hot_a == hot_b

    def test_different_permutation_seeds_move_hot_keys(self):
        a = ZipfKeys(1000, 1.4, seed=1, permutation_seed=1)
        b = ZipfKeys(1000, 1.4, seed=1, permutation_seed=2)
        hot_a = Counter(a.sample() for _ in range(5000)).most_common(1)[0][0]
        hot_b = Counter(b.sample() for _ in range(5000)).most_common(1)[0][0]
        assert hot_a != hot_b

    def test_sample_distinct_unique(self):
        dist = ZipfKeys(100, 1.2, seed=3)
        keys = dist.sample_distinct(5)
        assert len(set(keys)) == 5


def test_make_distribution_dispatch():
    assert isinstance(make_distribution(10, zipf=0.0), UniformKeys)
    assert isinstance(make_distribution(10, zipf=0.9), ZipfKeys)
    assert isinstance(make_distribution(10, zipf=None), UniformKeys)


class TestSampleBlock:
    """Vectorized draws must be stream-identical to single draws."""

    def test_uniform_block_equals_singles(self):
        block_side = UniformKeys(1000, seed=5)
        single_side = UniformKeys(1000, seed=5)
        block = block_side.sample_block(64)
        assert block == [single_side.sample() for _ in range(64)]
        # the streams stay aligned after the block
        assert block_side.sample() == single_side.sample()

    def test_zipf_block_equals_singles(self):
        block_side = ZipfKeys(1000, 0.99, seed=7, permutation_seed=3)
        single_side = ZipfKeys(1000, 0.99, seed=7, permutation_seed=3)
        block = block_side.sample_block(64)
        assert block == [single_side.sample() for _ in range(64)]
        assert block_side.sample() == single_side.sample()

    def test_block_values_in_range(self):
        for dist in (UniformKeys(10, seed=1),
                     ZipfKeys(10, 1.2, seed=1)):
            block = dist.sample_block(256)
            assert all(0 <= key < 10 for key in block)
            assert all(isinstance(key, int) for key in block)
