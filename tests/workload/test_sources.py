"""Aggregated open-loop sources: determinism, windows, backpressure."""

import pytest

from repro.sim import Simulator
from repro.workload.driver import OpenLoopDriver
from repro.workload.sources import (
    AggregatedOpenLoopSource,
    partition_clients,
)


def make_source(**overrides):
    spec = dict(n_clients=1000, rate_per_client_ops_s=100.0, n_keys=50,
                seed=3)
    spec.update(overrides)
    return AggregatedOpenLoopSource(**spec)


class TestSource:
    def test_mean_gap_matches_aggregate_rate(self):
        source = make_source(n_clients=1000, rate_per_client_ops_s=100.0)
        # 10⁵ ops/s aggregate → 10 µs mean gap
        assert source.mean_gap_us == pytest.approx(10.0)
        gaps = [source.next_gap_us() for _ in range(4000)]
        assert all(gap >= 0 for gap in gaps)
        assert sum(gaps) / len(gaps) == pytest.approx(10.0, rel=0.1)

    def test_deterministic_streams(self):
        first, second = make_source(), make_source()
        assert ([first.next_gap_us() for _ in range(300)]
                == [second.next_gap_us() for _ in range(300)])
        assert ([first.next_op() for _ in range(300)]
                == [second.next_op() for _ in range(300)])

    def test_distinct_sources_differ(self):
        base, other = make_source(source_id=0), make_source(source_id=1)
        assert ([base.next_gap_us() for _ in range(32)]
                != [other.next_gap_us() for _ in range(32)])

    def test_read_fraction_mixes_ops(self):
        source = make_source(read_fraction=0.5)
        kinds = {source.next_op().kind for _ in range(200)}
        assert kinds == {"get", "put"}
        pure = make_source(read_fraction=1.0)
        assert all(pure.next_op().kind == "get" for _ in range(200))

    def test_window_defaults_scale_with_population(self):
        assert make_source(n_clients=10).window == 1
        assert make_source(n_clients=100_000).window == 391
        assert make_source(n_clients=10_000_000).window == 1024
        assert make_source(window=7).window == 7

    def test_describe_records_model(self):
        model = make_source(window=16).describe()
        assert model["model"] == "aggregated-open-loop"
        assert model["clients"] == 1000
        assert model["rate_per_client_ops_s"] == 100.0
        assert model["window"] == 16

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            make_source(n_clients=0)
        with pytest.raises(ValueError):
            make_source(rate_per_client_ops_s=0.0)


class TestPartitionClients:
    def test_even_split(self):
        assert partition_clients(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread_to_earlier(self):
        assert partition_clients(10, 4) == [3, 3, 2, 2]

    def test_fewer_clients_than_sources(self):
        assert partition_clients(2, 8) == [1, 1]

    def test_sums_to_population(self):
        for clients, sources in ((100_000, 11), (7, 3), (1, 1)):
            assert sum(partition_clients(clients, sources)) == clients


class TestOpenLoopDriver:
    def run_driver(self, service_us=5.0, window=4, rate=2000.0,
                   measure_us=500.0):
        sim = Simulator()
        in_flight = {"now": 0, "max": 0}

        def executor(op):
            in_flight["now"] += 1
            in_flight["max"] = max(in_flight["max"], in_flight["now"])
            yield sim.timeout(service_us)
            in_flight["now"] -= 1
            return {}

        source = AggregatedOpenLoopSource(
            1000, rate, n_keys=50, seed=1, window=window)
        driver = OpenLoopDriver(sim, warmup_us=100.0, measure_us=measure_us)
        driver.add_source(executor, source)
        return driver.run(), source, in_flight

    def test_ops_complete_and_count(self):
        result, _, _ = self.run_driver()
        assert result.clients == 1000
        assert result.ops > 100
        assert result.mean_latency_us >= 5.0
        assert result.extra["n_sources"] == 1

    def test_window_bounds_in_flight(self):
        # Offered load (2 ops/µs × 5 µs service = 10 concurrent) far
        # exceeds the window of 4: in-flight must clamp at the window
        # and the deferred arrivals must be counted.
        result, source, in_flight = self.run_driver(window=4)
        assert in_flight["max"] <= 4
        assert result.extra["stalled_arrivals"] > 0
        assert source.stalled_arrivals == result.extra["stalled_arrivals"]

    def test_uncongested_source_never_stalls(self):
        result, _, in_flight = self.run_driver(
            service_us=0.5, rate=200.0, window=64)
        assert result.extra["stalled_arrivals"] == 0
        assert in_flight["max"] <= 64

    def test_deterministic_replay(self):
        first, _, _ = self.run_driver()
        second, _, _ = self.run_driver()
        assert first.ops == second.ops
        assert first.mean_latency_us == second.mean_latency_us
        assert first.p99_latency_us == second.p99_latency_us

    def test_failing_executor_frees_window_slot(self):
        sim = Simulator()
        calls = {"n": 0}

        def executor(op):
            calls["n"] += 1
            yield sim.timeout(1.0)
            if calls["n"] == 1:
                raise RuntimeError("op crashed")
            return {}

        source = AggregatedOpenLoopSource(
            100, 5000.0, n_keys=10, seed=2, window=1)
        driver = OpenLoopDriver(sim, warmup_us=50.0, measure_us=200.0)
        driver.add_source(executor, source)
        # The crash surfaces (fire-and-forget ops are unobserved), but
        # only after the window slot was freed — later arrivals ran.
        with pytest.raises(RuntimeError, match="op crashed"):
            driver.run()
        assert calls["n"] > 1
