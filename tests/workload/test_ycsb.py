"""YCSB workload definitions."""

from collections import Counter

from repro.workload.ycsb import (
    YCSB_A,
    YCSB_C,
    YcsbTransactionalWorkload,
    YcsbWorkload,
)


def test_ycsb_c_is_read_only():
    workload = YCSB_C(100, seed=1, client_id=0)
    ops = [workload.next_op() for _ in range(500)]
    assert all(op.kind == "get" for op in ops)


def test_ycsb_a_is_half_and_half():
    workload = YCSB_A(100, seed=1, client_id=0)
    kinds = Counter(workload.next_op().kind for _ in range(4000))
    assert 0.42 < kinds["get"] / 4000 < 0.58
    assert kinds["get"] + kinds["put"] == 4000


def test_put_values_have_requested_size():
    workload = YCSB_A(100, value_size=256, seed=1, client_id=0)
    for _ in range(100):
        op = workload.next_op()
        if op.kind == "put":
            assert len(op.value) == 256
            return
    raise AssertionError("no put generated")


def test_keys_within_range():
    workload = YCSB_C(50, seed=2, client_id=3)
    assert all(0 <= workload.next_op().key < 50 for _ in range(500))


def test_different_clients_different_streams():
    a = [YCSB_C(1000, seed=1, client_id=0).next_op().key for _ in range(5)]
    b = [YCSB_C(1000, seed=1, client_id=1).next_op().key for _ in range(5)]
    assert a != b


def test_transactional_workload_shape():
    workload = YcsbTransactionalWorkload(100, keys_per_txn=3, seed=1,
                                         client_id=0)
    op = workload.next_op()
    assert op.kind == "txn"
    assert len(op.read_keys) == 3
    assert len(set(op.read_keys)) == 3
    assert op.read_keys == op.write_keys
    assert op.read_keys == tuple(sorted(op.read_keys))
    assert len(op.value) == 512


def test_transactional_keys_sorted_for_deadlock_freedom():
    workload = YcsbTransactionalWorkload(1000, keys_per_txn=4, seed=7,
                                         client_id=2)
    for _ in range(50):
        op = workload.next_op()
        assert list(op.read_keys) == sorted(op.read_keys)


def test_ycsb_b_is_read_mostly():
    from collections import Counter
    from repro.workload.ycsb import YCSB_B
    workload = YCSB_B(100, seed=2, client_id=0)
    kinds = Counter(workload.next_op().kind for _ in range(4000))
    assert 0.92 < kinds["get"] / 4000 < 0.98
