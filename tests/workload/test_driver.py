"""Closed-loop driver accounting."""

import pytest

from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import KvOp


class FixedLatencyExecutor:
    """Executes every op in a fixed simulated time."""

    def __init__(self, sim, latency_us, info=None):
        self.sim = sim
        self.latency_us = latency_us
        self.info = info
        self.executed = 0

    def __call__(self, op):
        yield self.sim.timeout(self.latency_us)
        self.executed += 1
        return self.info


class TrivialWorkload:
    def next_op(self):
        return KvOp("get", 0)


def test_driver_requires_clients(sim):
    with pytest.raises(ValueError):
        ClosedLoopDriver(sim).run()


def test_throughput_and_latency_accounting(sim):
    driver = ClosedLoopDriver(sim, warmup_us=100, measure_us=1000,
                              stagger_us=0.0)
    executor = FixedLatencyExecutor(sim, latency_us=10.0)
    driver.add_client(executor, TrivialWorkload())
    result = driver.run()
    assert result.mean_latency_us == pytest.approx(10.0)
    # one op per 10 µs over the 1000 µs window
    assert result.ops == pytest.approx(100, abs=2)
    assert result.throughput_ops_per_sec == pytest.approx(1e5, rel=0.05)


def test_warmup_ops_not_counted(sim):
    driver = ClosedLoopDriver(sim, warmup_us=500, measure_us=500,
                              stagger_us=0.0)
    executor = FixedLatencyExecutor(sim, latency_us=10.0)
    driver.add_client(executor, TrivialWorkload())
    result = driver.run()
    # ~100 ops executed total but only the post-warmup half recorded.
    assert result.ops == pytest.approx(50, abs=2)


def test_multiple_clients_aggregate(sim):
    driver = ClosedLoopDriver(sim, warmup_us=0, measure_us=100,
                              stagger_us=0.0)
    for _ in range(4):
        driver.add_client(FixedLatencyExecutor(sim, 10.0), TrivialWorkload())
    result = driver.run()
    assert result.clients == 4
    assert result.ops == pytest.approx(40, abs=4)


def test_info_dict_counted(sim):
    driver = ClosedLoopDriver(sim, warmup_us=0, measure_us=100,
                              stagger_us=0.0)
    driver.add_client(
        FixedLatencyExecutor(sim, 10.0, info={"retries": 2, "aborts": 1}),
        TrivialWorkload())
    result = driver.run()
    assert result.retries == 2 * result.ops
    assert result.aborts == result.ops


def test_stagger_spreads_starts(sim):
    driver = ClosedLoopDriver(sim, warmup_us=0, measure_us=50,
                              stagger_us=20.0)
    executors = [FixedLatencyExecutor(sim, 10.0) for _ in range(3)]
    for executor in executors:
        driver.add_client(executor, TrivialWorkload())
    result = driver.run()
    # Staggered clients complete different op counts in a short window.
    counts = {e.executed for e in executors}
    assert len(counts) > 1


def test_row_shape(sim):
    driver = ClosedLoopDriver(sim, warmup_us=0, measure_us=100,
                              stagger_us=0.0)
    driver.add_client(FixedLatencyExecutor(sim, 10.0), TrivialWorkload())
    row = driver.run().row()
    assert set(row) == {"clients", "ops", "tput_Mops", "mean_us", "p99_us"}
