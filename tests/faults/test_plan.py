"""FaultPlan construction and the CLI spec parser."""

import pytest

from repro.faults import CrashEvent, FaultPlan, RetryPolicy, parse_faults


class TestFaultPlan:
    def test_default_plan_is_quiet(self):
        assert FaultPlan(seed=7).quiet

    def test_any_injection_knob_breaks_quiet(self):
        assert not FaultPlan(drop=0.1).quiet
        assert not FaultPlan(duplicate=0.1).quiet
        assert not FaultPlan(jitter_us=1.0).quiet
        assert not FaultPlan(crashes=[CrashEvent("h", 5.0)]).quiet
        assert not FaultPlan(starve=0.5).quiet

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(starve=2.0)
        with pytest.raises(ValueError):
            FaultPlan(jitter_us=-1.0)

    def test_crash_recovery_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashEvent("h", 10.0, recover_at_us=5.0)
        with pytest.raises(ValueError):
            CrashEvent("h", -1.0)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base_us=2.0, backoff_max_us=16.0)
        assert policy.backoff_us(0) == 2.0
        assert policy.backoff_us(1) == 4.0
        assert policy.backoff_us(2) == 8.0
        assert policy.backoff_us(3) == 16.0
        assert policy.backoff_us(10) == 16.0  # capped

    def test_backoff_jitter_bounded_and_seeded(self):
        from repro.sim.rng import SeededRng
        policy = RetryPolicy(backoff_base_us=2.0, backoff_max_us=16.0)
        draws = [policy.backoff_us(3, SeededRng(1).stream("s"))
                 for _ in range(20)]
        assert all(1.0 <= d <= 16.0 for d in draws)
        again = [policy.backoff_us(3, SeededRng(1).stream("s"))
                 for _ in range(20)]
        assert draws == again


class TestParseFaults:
    def test_full_spec(self):
        plan = parse_faults("seed=3,drop=0.01,dup=0.001,jitter=2,"
                            "crash=replica0@500+300,starve=0.5,"
                            "starve_at=200,starve_hold=400,"
                            "timeout=50,retries=4,backoff=1,backoff_max=64")
        assert plan.seed == 3
        assert plan.drop == 0.01
        assert plan.duplicate == 0.001
        assert plan.jitter_us == 2.0
        assert plan.crashes == (
            CrashEvent("replica0", 500.0, recover_at_us=800.0),)
        assert plan.starve == 0.5
        assert plan.starve_at_us == 200.0
        assert plan.starve_hold_us == 400.0
        assert plan.retry == RetryPolicy(timeout_us=50.0, max_retries=4,
                                         backoff_base_us=1.0,
                                         backoff_max_us=64.0)

    def test_permanent_crash(self):
        plan = parse_faults("crash=server@100")
        assert plan.crashes == (CrashEvent("server", 100.0),)
        assert plan.crashes[0].recover_at_us is None

    def test_repeatable_crash_key(self):
        plan = parse_faults("crash=r0@100,crash=r1@200+50")
        assert [c.host for c in plan.crashes] == ["r0", "r1"]

    def test_seed_only_spec_is_quiet(self):
        assert parse_faults("seed=9").quiet

    def test_bad_pieces_rejected(self):
        with pytest.raises(ValueError):
            parse_faults("drop")
        with pytest.raises(ValueError):
            parse_faults("frobnicate=1")
        with pytest.raises(ValueError):
            parse_faults("crash=no-at-sign")
