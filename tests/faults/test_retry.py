"""RequestChannel retransmission: ack timeouts, backoff, give-up."""

import pytest

from repro.faults import RetryPolicy
from repro.net.port import RequestChannel, send_reply
from repro.sim import TimeoutExpired


class TestRequestWithRetry:
    def test_retransmits_until_a_reply_arrives(self, sim, fabric, drive):
        channel = RequestChannel(sim, fabric, "client")
        seen = []

        def service(message):
            request = message.payload
            seen.append(request.id)
            if len(seen) < 3:
                return  # lose the first two requests (no reply)
            sim.spawn(send_reply(fabric, "server", request, "pong", 64))

        fabric.host("server").register_service("svc", service)
        policy = RetryPolicy(timeout_us=50.0, max_retries=5,
                             backoff_base_us=1.0)

        def main():
            value = yield from channel.request_with_retry(
                "server", "svc", "ping", 64, policy)
            return value

        assert drive(sim, main()) == "pong"
        # Each retransmission is a fresh request id.
        assert len(seen) == 3 and len(set(seen)) == 3
        assert channel.retransmissions == 2
        assert channel.timeouts == 2
        assert channel.outstanding == 0

    def test_gives_up_after_max_retries(self, sim, fabric, drive):
        channel = RequestChannel(sim, fabric, "client")
        seen = []
        fabric.host("server").register_service(
            "void", lambda message: seen.append(message.payload.id))
        policy = RetryPolicy(timeout_us=20.0, max_retries=2,
                             backoff_base_us=1.0)

        def main():
            yield from channel.request_with_retry(
                "server", "void", "ping", 64, policy)

        with pytest.raises(TimeoutExpired):
            drive(sim, main())
        assert len(seen) == 3  # original + 2 retransmissions
        assert channel.timeouts == 3
        assert channel.retransmissions == 2
        assert channel.outstanding == 0

    def test_late_reply_to_abandoned_id_is_dropped(self, sim, fabric, drive):
        """A reply that arrives after its attempt timed out must not
        complete the retransmitted attempt (fresh id) or crash."""
        channel = RequestChannel(sim, fabric, "client")
        attempts = []

        def service(message):
            request = message.payload
            attempts.append(request.id)

            def respond(delay, body):
                yield sim.timeout(delay)
                yield from send_reply(fabric, "server", request, body, 64)

            # First attempt answers long after the ack timeout; the
            # retransmission answers promptly.
            if len(attempts) == 1:
                sim.spawn(respond(200.0, "stale"))
            else:
                sim.spawn(respond(1.0, "fresh"))

        fabric.host("server").register_service("slow", service)
        policy = RetryPolicy(timeout_us=40.0, max_retries=3,
                             backoff_base_us=1.0)

        def main():
            value = yield from channel.request_with_retry(
                "server", "slow", "ping", 64, policy)
            # Let the stale reply land while nothing is pending.
            yield sim.timeout(300.0)
            return value

        assert drive(sim, main()) == "fresh"
        assert channel.outstanding == 0

    def test_nak_is_not_retried(self, sim, fabric, drive):
        """A delivered negative reply propagates immediately: it is an
        answer, not a loss."""
        channel = RequestChannel(sim, fabric, "client")
        calls = []

        def service(message):
            request = message.payload
            calls.append(request.id)
            sim.spawn(send_reply(fabric, "server", request,
                                 ValueError("nak"), 64, ok=False))

        fabric.host("server").register_service("nak", service)
        policy = RetryPolicy(timeout_us=50.0, max_retries=5)

        def main():
            yield from channel.request_with_retry(
                "server", "nak", "ping", 64, policy)

        with pytest.raises(ValueError):
            drive(sim, main())
        assert len(calls) == 1
        assert channel.retransmissions == 0
