"""FaultInjector unit behaviour: seeding, fates, crash schedule."""

from repro.faults import FaultInjector, FaultPlan, parse_faults
from repro.sim import Simulator


def _fates(plan, n=200):
    sim = Simulator()
    injector = sim.set_faults(plan)
    return [(fate.drop, fate.duplicate, round(fate.delay_us, 9))
            for fate in (injector.on_message(None) for _ in range(n))]


class TestMessageFates:
    def test_same_seed_same_fates(self):
        plan = FaultPlan(seed=42, drop=0.2, duplicate=0.1, jitter_us=3.0)
        assert _fates(plan) == _fates(plan)

    def test_different_seed_different_fates(self):
        base = dict(drop=0.2, duplicate=0.1, jitter_us=3.0)
        assert (_fates(FaultPlan(seed=1, **base))
                != _fates(FaultPlan(seed=2, **base)))

    def test_quiet_plan_injects_nothing(self):
        assert _fates(FaultPlan(seed=5)) == [(False, False, 0.0)] * 200

    def test_counters_match_fates(self):
        sim = Simulator()
        injector = sim.set_faults(FaultPlan(seed=1, drop=0.3, duplicate=0.2,
                                            jitter_us=2.0))
        fates = [injector.on_message(None) for _ in range(500)]
        assert injector.counters["messages_dropped"] == sum(
            1 for f in fates if f.drop)
        assert injector.counters["messages_duplicated"] == sum(
            1 for f in fates if f.duplicate)
        assert injector.counters["messages_delayed"] == sum(
            1 for f in fates if f.delay_us > 0)
        assert injector.counters["messages_dropped"] > 0
        assert injector.counters["messages_duplicated"] > 0


class TestCrashSchedule:
    def test_down_window(self):
        sim = Simulator()
        injector = sim.set_faults(
            parse_faults("crash=server@100+50,crash=other@300"))
        assert not injector.is_down("server")
        sim.run(until=120)
        assert injector.is_down("server")
        assert not injector.is_down("other")
        sim.run(until=400)
        assert not injector.is_down("server")  # recovered at 150
        assert injector.is_down("other")       # permanent
        assert injector.counters["crashes"] == 2
        assert injector.counters["recoveries"] == 1

    def test_late_registered_server_fails_immediately(self):
        class FakeServer:
            def __init__(self):
                self.failed = 0
                self.recovered = 0

            def fail(self):
                self.failed += 1

            def recover(self):
                self.recovered += 1

        sim = Simulator()
        injector = sim.set_faults(parse_faults("crash=host@10+20"))
        sim.run(until=15)
        server = FakeServer()
        injector.register_server("host", server)
        assert server.failed == 1  # host already down when it registered
        sim.run(until=40)
        assert server.recovered == 1


class TestReporting:
    def test_report_carries_plan_and_counters(self):
        sim = Simulator()
        injector = sim.set_faults(FaultPlan(seed=3, drop=0.5))
        for _ in range(50):
            injector.on_message(None)
        report = injector.report()
        assert report["plan"]["seed"] == 3
        assert report["plan"]["drop"] == 0.5
        assert report["messages_dropped"] > 0
        assert report["hosts_down"] == []

    def test_absorb_into_metrics_registry(self):
        from repro.obs import MetricsRegistry
        sim = Simulator()
        injector = sim.set_faults(FaultPlan(seed=3, drop=0.5))
        for _ in range(50):
            injector.on_message(None)
        registry = injector.absorb_into(MetricsRegistry())
        dropped = injector.counters["messages_dropped"]
        assert registry.value("faults.messages_dropped") == dropped
        assert registry.value("faults.hosts_down") == 0

    def test_retry_streams_numbered_in_allocation_order(self):
        sim = Simulator()
        injector = sim.set_faults(FaultPlan(seed=8))
        first = [injector.retry_stream().random() for _ in range(3)]
        sim2 = Simulator()
        injector2 = sim2.set_faults(FaultPlan(seed=8))
        second = [injector2.retry_stream().random() for _ in range(3)]
        assert first == second
