"""The off-by-default contract and faulty-run determinism.

Two guarantees: (1) with no fault plan — or an installed-but-quiet
plan that carries only a seed — a benchmark point is bit-identical to
the uninjected baseline; (2) with a plan installed, the same plan and
workload replay to the same RunResult, drop for drop.
"""

from repro.bench.harness import run_point
from repro.faults import FaultPlan, parse_faults
from repro.workload import YCSB_A, YcsbTransactionalWorkload

_POINT = dict(n_clients=4, n_keys=300, warmup_us=100, measure_us=500)


def _rs_point(faults=None):
    result = run_point(
        "rs", "prism-sw",
        lambda i: YCSB_A(300, seed=5, client_id=i),
        faults=faults, **_POINT)
    return (result.ops, result.throughput_ops_per_sec,
            result.mean_latency_us, result.median_latency_us,
            result.p99_latency_us, result.aborts)


def _tx_point(faults=None):
    result = run_point(
        "tx", "prism-sw",
        lambda i: YcsbTransactionalWorkload(200, keys_per_txn=1, zipf=0.9,
                                            seed=7, client_id=i),
        faults=faults, **_POINT)
    return (result.ops, result.throughput_ops_per_sec,
            result.mean_latency_us, result.aborts)


class TestQuietPlanBitIdentity:
    def test_rs_quiet_plan_matches_no_plan(self):
        assert _rs_point(faults=FaultPlan(seed=9)) == _rs_point(faults=None)

    def test_tx_quiet_plan_matches_no_plan(self):
        assert _tx_point(faults=FaultPlan(seed=9)) == _tx_point(faults=None)

    def test_quiet_plan_report_shows_nothing_injected(self):
        result = run_point(
            "rs", "prism-sw",
            lambda i: YCSB_A(300, seed=5, client_id=i),
            faults=FaultPlan(seed=9), **_POINT)
        report = result.extra["faults"]
        assert report["messages_dropped"] == 0
        assert report["messages_duplicated"] == 0
        assert report["messages_delayed"] == 0
        assert report["retransmissions"] == 0


class TestFaultyRunDeterminism:
    def test_rs_same_plan_same_result(self):
        spec = "seed=3,drop=0.02,dup=0.005,jitter=1.5"
        assert _rs_point(faults=spec) == _rs_point(faults=spec)

    def test_tx_same_plan_same_result(self):
        spec = "seed=4,drop=0.02"
        assert _tx_point(faults=spec) == _tx_point(faults=spec)

    def test_injection_counters_replay_exactly(self):
        spec = parse_faults("seed=6,drop=0.02,dup=0.01")

        def counters():
            result = run_point(
                "rs", "prism-sw",
                lambda i: YCSB_A(300, seed=5, client_id=i),
                faults=spec, **_POINT)
            report = result.extra["faults"]
            return (report["messages_dropped"],
                    report["messages_duplicated"],
                    report["timeouts"], report["retransmissions"])

        first = counters()
        assert first == counters()
        assert first[0] > 0  # the plan actually dropped something

    def test_different_seed_different_schedule(self):
        base = "drop=0.02,dup=0.005,jitter=1.5"
        assert (_rs_point(faults=f"seed=1,{base}")
                != _rs_point(faults=f"seed=2,{base}"))
