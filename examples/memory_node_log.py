#!/usr/bin/env python
"""An audit log on a network-attached memory node (paper §10).

The "server" here has no application CPU at all — it is a memory node
reachable only through (projected hardware) PRISM operations. Four
application hosts append audit events to one shared log; each append is
a single chained ALLOCATE/CAS_GT request racing against the other
writers, and a reader tails the log with indirect READs.

Run:  python examples/memory_node_log.py
"""

from repro.apps.memnode import SharedLogClient, SharedLogNode
from repro.net.topology import RACK, make_fabric
from repro.prism import HardwarePrismBackend
from repro.sim import SeededRng, Simulator

N_WRITERS = 4
EVENTS_PER_WRITER = 25


def main():
    sim = Simulator()
    hosts = ["memnode"] + [f"app{i}" for i in range(N_WRITERS + 1)]
    fabric = make_fabric(sim, RACK, hosts)
    node = SharedLogNode(sim, fabric, "memnode", HardwarePrismBackend,
                         max_record_bytes=96, capacity=2048)
    print("memory node online: passive host, log head + free list only\n")

    clients = [SharedLogClient(sim, fabric, f"app{i}", node)
               for i in range(N_WRITERS)]
    written = {}

    def auditor(index, client):
        rng = SeededRng(3).fork(index).stream("events")
        for event in range(EVENTS_PER_WRITER):
            record = (f"host=app{index} event={event} "
                      f"action={'login' if rng.random() < 0.5 else 'write'}"
                      ).encode()
            seq = yield from client.append(record)
            written[seq] = record

    processes = [sim.spawn(auditor(i, c)) for i, c in enumerate(clients)]
    waiter = sim.spawn((lambda d: (yield d))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e8)
    total = N_WRITERS * EVENTS_PER_WRITER
    conflicts = sum(c.append_conflicts for c in clients)
    print(f"t={sim.now:8.1f} us  {total} events appended by {N_WRITERS} "
          f"hosts ({conflicts} CAS races retried)")

    reader = SharedLogClient(sim, fabric, f"app{N_WRITERS}", node)
    holder = {}

    def tail():
        holder["latest"] = yield from reader.read_latest()
        holder["last5"] = yield from reader.scan(limit=5)
        holder["all"] = yield from reader.scan()

    sim.run_until_complete(sim.spawn(tail()), limit=1e8)
    seq, payload = holder["latest"]
    print(f"t={sim.now:8.1f} us  latest record: seq={seq} {payload!r}")
    print("               last five entries (newest first):")
    for seq, payload in holder["last5"]:
        print(f"                 #{seq:<3} {payload.decode()}")
    records = holder["all"]
    assert [s for s, _ in records] == list(range(total, 0, -1))
    assert all(written[s] == p for s, p in records)
    print(f"\nfull scan: {len(records)} records, all sequence numbers "
          "unique and every payload intact")


if __name__ == "__main__":
    main()
