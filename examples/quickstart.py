#!/usr/bin/env python
"""Quickstart: the PRISM primitives, one by one.

Builds a client and a PRISM server on a simulated rack network and
walks through the four interface extensions of Table 1:

1. indirect (and bounded) READs,
2. ALLOCATE from a free-list queue pair,
3. enhanced CAS (masked, >8-byte, arithmetic comparison),
4. operation chaining with output redirection — ending with the
   canonical one-round-trip out-of-place update.

Run:  python examples/quickstart.py
"""

from repro.core import AllocateOp, CasMode, CasOp, ReadOp, WriteOp, chain
from repro.core.errors import AccessViolation
from repro.hw.layout import pack_bounded_ptr, pack_uint
from repro.net.topology import RACK, make_fabric
from repro.prism import PrismClient, PrismServer, SoftwarePrismBackend
from repro.sim import Simulator


def main():
    sim = Simulator()
    fabric = make_fabric(sim, RACK, ["client", "server"])

    # A server with 1 MiB of registered application memory and a free
    # list of 64 x 128-byte buffers the NIC can hand out to ALLOCATE.
    server = PrismServer(sim, fabric, "server", SoftwarePrismBackend)
    region, rkey = server.add_region(1 << 20)
    freelist, buf_rkey = server.create_freelist(128, 64)
    client = PrismClient(sim, fabric, "client", server)

    def tour():
        # -- plain one-sided ops (classic RDMA) -------------------------
        t0 = sim.now
        yield from client.write(region, b"hello, remote memory")
        data = yield from client.read(region, 20)
        print(f"[1] WRITE+READ roundtrip: {data!r}  "
              f"({sim.now - t0:.2f} us for both)")

        # -- indirection (§3.1) -----------------------------------------
        # Store a pointer, then let the NIC chase it in one round trip.
        target = region + 256
        yield from client.write(target, b"the pointee value...")
        yield from client.write(region + 64, pack_uint(target, 8))
        t0 = sim.now
        data = yield from client.read(region + 64, 20, indirect=True)
        print(f"[2] indirect READ -> {data!r}  ({sim.now - t0:.2f} us, "
              "one round trip)")

        # Bounded pointers clamp variable-length objects (§3.1).
        yield from client.write(region + 96, pack_bounded_ptr(target, 11))
        data = yield from client.read(region + 96, 4096, indirect=True,
                                      bounded=True)
        print(f"[3] bounded indirect READ of 4096 returned "
              f"{len(data)} bytes: {data!r}")

        # -- allocation (§3.2) -------------------------------------------
        buffer_addr = yield from client.allocate(freelist,
                                                 b"allocated by the NIC")
        print(f"[4] ALLOCATE popped buffer @{buffer_addr:#x} and wrote "
              "our payload into it")

        # -- enhanced CAS (§3.3) ------------------------------------------
        # A 16-byte versioned slot: [version u64 | payload u64].
        slot = region + 512
        yield from client.write(slot, pack_uint(3, 8) + pack_uint(0xAAAA, 8))
        # Install only if our version (4) is greater - compare the
        # version field, swap the whole struct.
        swapped, old = yield from client.cas(
            slot, pack_uint(4, 8) + pack_uint(0xBBBB, 8),
            mode=CasMode.GT, compare_mask=(1 << 64) - 1, operand_width=16)
        print(f"[5] CAS_GT(ver 4 > 3): swapped={swapped}, "
              f"old version={int.from_bytes(old[:8], 'little')}")
        swapped, _ = yield from client.cas(
            slot, pack_uint(4, 8) + pack_uint(0xCCCC, 8),
            mode=CasMode.GT, compare_mask=(1 << 64) - 1, operand_width=16)
        print(f"[6] CAS_GT(ver 4 > 4): swapped={swapped} "
              "(stale version rejected)")

        # -- chaining (§3.4): the out-of-place update ---------------------
        # One round trip: allocate a buffer, redirect its address into
        # this connection's on-NIC scratch slot, then conditionally CAS
        # the versioned pointer to point at it.
        tmp = client.sram_slot
        t0 = sim.now
        result = yield from client.execute(chain(
            WriteOp(addr=tmp, data=pack_uint(5, 8),
                    rkey=server.sram_rkey),
            AllocateOp(freelist=freelist, data=b"v5: out-of-place!",
                       rkey=buf_rkey, redirect_to=tmp + 8,
                       conditional=True),
            CasOp(target=slot, data=pack_uint(tmp, 8), rkey=rkey,
                  mode=CasMode.GT, compare_mask=(1 << 64) - 1,
                  data_indirect=True, operand_width=16, conditional=True),
        ))
        print(f"[7] chained ALLOCATE->redirect->CAS committed="
              f"{result.committed} in {sim.now - t0:.2f} us "
              "(one round trip)")
        new_ptr = int.from_bytes(
            server.space.read(slot + 8, 8), "little")
        stored = server.space.read(new_ptr, 17)
        print(f"    slot now points at {new_ptr:#x} holding {stored!r}")

        # -- protection (§3.1) ---------------------------------------------
        try:
            yield from client.read(region + (1 << 20) + 64, 8)
        except AccessViolation as exc:
            print(f"[8] out-of-region access NAK'd as expected: {exc}")

    sim.run_until_complete(sim.spawn(tour()), limit=1e6)
    print(f"\nsimulated time elapsed: {sim.now:.2f} us")


if __name__ == "__main__":
    main()
