#!/usr/bin/env python
"""A web-session cache on PRISM-KV (the paper's memcached scenario, §6).

Simulates an application tier of web servers keeping user sessions in
a remote PRISM-KV store: every request reads the session blob with one
indirect READ and occasionally rewrites it with the chained
out-of-place PUT — no CPU on the cache server's data path.

Also runs the same workload against the Pilaf baseline to show the
round-trip difference the paper measures in Fig. 3/4.

Run:  python examples/kv_session_cache.py
"""

import json

from repro.apps.kv import PilafClient, PilafServer, PrismKvClient, PrismKvServer
from repro.net.topology import RACK, make_fabric
from repro.prism import HardwareRdmaBackend, SoftwarePrismBackend
from repro.sim import SeededRng, Simulator
from repro.sim.stats import LatencyRecorder

N_SESSIONS = 2_000
N_WEB_SERVERS = 4
REQUESTS_PER_SERVER = 150
UPDATE_FRACTION = 0.25


def session_blob(user, hits):
    payload = json.dumps({"user": f"user-{user}", "hits": hits,
                          "cart": ["sku-%04d" % (user % 97)]})
    return payload.encode().ljust(256, b" ")


def run_system(name, make_server, make_client):
    sim = Simulator()
    hosts = ["cache"] + [f"web{i}" for i in range(N_WEB_SERVERS)]
    fabric = make_fabric(sim, RACK, hosts)
    server = make_server(sim, fabric)
    for user in range(N_SESSIONS):
        server.load(user, session_blob(user, 0))
    latencies = LatencyRecorder()
    hit_counts = {}

    def web_server(index):
        client = make_client(sim, fabric, f"web{index}", server)
        rng = SeededRng(7).fork(index).stream("requests")
        for _ in range(REQUESTS_PER_SERVER):
            user = rng.randrange(N_SESSIONS)
            start = sim.now
            blob = yield from client.get(user)
            session = json.loads(blob.decode().strip())
            if rng.random() < UPDATE_FRACTION:
                session["hits"] += 1
                hit_counts[user] = session["hits"]
                yield from client.put(
                    user, json.dumps(session).encode().ljust(256, b" "))
            latencies.record(sim.now, sim.now - start)

    processes = [sim.spawn(web_server(i)) for i in range(N_WEB_SERVERS)]
    waiter = sim.spawn((lambda done: (yield done))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e8)

    # Verify the cache is consistent with what the app believes.
    checked = 0
    verify_client = make_client(sim, fabric, "web0", server)
    def verify():
        nonlocal checked
        for user, hits in list(hit_counts.items())[:50]:
            blob = yield from verify_client.get(user)
            session = json.loads(blob.decode().strip())
            assert session["hits"] >= 1
            checked += 1
    sim.run_until_complete(sim.spawn(verify()), limit=1e8)

    print(f"{name:<22} {latencies.count:5d} requests   "
          f"mean {latencies.mean():6.2f} us   p99 {latencies.p99():6.2f} us"
          f"   ({checked} sessions verified)")


def main():
    print(f"session cache: {N_SESSIONS} sessions, {N_WEB_SERVERS} web "
          f"servers, {UPDATE_FRACTION:.0%} writes\n")
    run_system(
        "PRISM-KV (software)",
        lambda sim, fabric: PrismKvServer(sim, fabric, "cache",
                                          SoftwarePrismBackend,
                                          n_keys=N_SESSIONS,
                                          max_value_bytes=256),
        lambda sim, fabric, host, server: PrismKvClient(sim, fabric, host,
                                                        server))
    run_system(
        "Pilaf (hardware RDMA)",
        lambda sim, fabric: PilafServer(sim, fabric, "cache",
                                        HardwareRdmaBackend,
                                        n_keys=N_SESSIONS,
                                        max_value_bytes=256),
        lambda sim, fabric, host, server: PilafClient(sim, fabric, host,
                                                      server))


if __name__ == "__main__":
    main()
