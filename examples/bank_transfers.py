#!/usr/bin/env python
"""Bank transfers on sharded PRISM-TX (§8's transactional scenario).

Accounts live on three PRISM-TX partition servers; concurrent tellers
move money between randomly chosen accounts with cross-shard
serializable transactions. The invariant — total money is conserved —
is checked at the end with a read-only transaction spanning all shards,
and the commit history is validated by the timestamp-serializability
checker.

Run:  python examples/bank_transfers.py
"""

from itertools import count

from repro.apps.tx import PrismTxServer
from repro.apps.tx.sharded import ShardedPrismTxClient, load_sharded
from repro.net.topology import RACK, make_fabric
from repro.prism import SoftwarePrismBackend
from repro.sim import SeededRng, Simulator
from repro.verify.serializability import (
    CommittedTxn,
    check_timestamp_serializable,
)

N_SHARDS = 3
N_ACCOUNTS = 60
OPENING_BALANCE = 1_000
N_TELLERS = 5
TRANSFERS_PER_TELLER = 40
VALUE_SIZE = 32


def encode_balance(balance):
    return balance.to_bytes(8, "little") + bytes(VALUE_SIZE - 8)


def decode_balance(blob):
    return int.from_bytes(blob[:8], "little")


def main():
    sim = Simulator()
    hosts = [f"shard{i}" for i in range(N_SHARDS)] + [
        f"teller{i}" for i in range(N_TELLERS + 1)]
    fabric = make_fabric(sim, RACK, hosts)
    servers = [PrismTxServer(sim, fabric, f"shard{i}", SoftwarePrismBackend,
                             n_keys=N_ACCOUNTS // N_SHARDS + 1,
                             value_size=VALUE_SIZE)
               for i in range(N_SHARDS)]
    initial = {}
    for account in range(N_ACCOUNTS):
        blob = encode_balance(OPENING_BALANCE)
        initial[account] = blob
        load_sharded(servers, account, blob)
    print(f"opened {N_ACCOUNTS} accounts x ${OPENING_BALANCE} across "
          f"{N_SHARDS} shards (total ${N_ACCOUNTS * OPENING_BALANCE})\n")

    committed = []
    txn_ids = count(1)
    stats = {"transfers": 0, "retries": 0}

    def teller(index):
        client = ShardedPrismTxClient(sim, fabric, f"teller{index}", servers,
                                      client_id=index + 1)
        client.on_commit = (
            lambda ts, reads, writes, start, finish: committed.append(
                CommittedTxn(next(txn_ids), ts, reads, writes, start,
                             finish)))
        rng = SeededRng(99).fork(index).stream("transfers")
        for _ in range(TRANSFERS_PER_TELLER):
            src, dst = rng.sample(range(N_ACCOUNTS), 2)
            amount = rng.randrange(1, 50)
            # A transfer is ONE serializable RMW transaction: read
            # both balances, write both back (per-key values), atomic
            # even when the accounts live on different shards.
            retries = yield from transfer(client, src, dst, amount)
            stats["transfers"] += 1
            stats["retries"] += retries

    def transfer(client, src, dst, amount):
        """One serializable cross-shard read-modify-write transaction:
        read both balances, write both back with per-key values."""
        keys = tuple(sorted((src, dst)))
        attempts = 0
        from repro.apps.tx.prism_tx import TxAborted
        while True:
            attempts += 1
            try:
                def do_transfer(blobs):
                    balances = {k: decode_balance(blobs[k]) for k in keys}
                    moved = min(amount, balances[src])  # no overdrafts
                    balances[src] -= moved
                    balances[dst] += moved
                    return {k: encode_balance(balances[k]) for k in keys}
                # Read, compute, and install atomically: the write set
                # carries a different value per account.
                blobs, retries = yield from _rmw(client, keys, do_transfer)
                return attempts - 1
            except TxAborted:
                yield sim.timeout(2.0 * attempts)

    def _rmw(client, keys, compute):
        """A single run_transaction_kv attempt with computed writes."""
        versions, blobs = yield from client._execute_reads(keys)
        writes = compute(blobs)
        ts = client.clock.timestamp(versions.values())
        yield from client._prepare(keys, keys, versions, ts)
        yield from client._commit(writes, ts)
        client.commits += 1
        if client.on_commit is not None:
            client.on_commit(ts, dict(blobs), writes, None, sim.now)
        return blobs, 0

    processes = [sim.spawn(teller(i)) for i in range(N_TELLERS)]
    waiter = sim.spawn((lambda done: (yield done))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e9)
    print(f"t={sim.now:9.1f} us  {stats['transfers']} transfers committed "
          f"({stats['retries']} conflict retries)")

    auditor = ShardedPrismTxClient(sim, fabric, f"teller{N_TELLERS}",
                                   servers, client_id=N_TELLERS + 1)
    holder = {}

    def audit():
        values, _ = yield from auditor.transact(tuple(range(N_ACCOUNTS)),
                                                (), b"")
        holder["total"] = sum(decode_balance(v) for v in values.values())

    sim.run_until_complete(sim.spawn(audit()), limit=1e9)
    expected = N_ACCOUNTS * OPENING_BALANCE
    print(f"audit: total money = ${holder['total']} "
          f"(expected ${expected}) -> "
          f"{'CONSERVED' if holder['total'] == expected else 'LOST!'}")
    assert holder["total"] == expected

    check_timestamp_serializable(committed, initial)
    print(f"serializability check: {len(committed)} committed transactions "
          "replay cleanly in timestamp order")


if __name__ == "__main__":
    main()
