#!/usr/bin/env python
"""A fault-tolerant virtual disk on PRISM-RS (§7's block-store scenario).

A tiny "filesystem" stores fixed-size blocks on a 3-replica PRISM-RS
group: a journal of writes, a crash of one replica mid-run, and a full
read-back verification afterwards — demonstrating that the ABD quorum
protocol keeps the disk linearizable and available through f = 1
failures with no replica-CPU involvement on the data path.

Run:  python examples/replicated_virtual_disk.py
"""

from repro.apps.blockstore import PrismRsClient, PrismRsReplica
from repro.net.topology import RACK, make_fabric
from repro.prism import SoftwarePrismBackend
from repro.sim import SeededRng, Simulator

N_BLOCKS = 256
BLOCK_SIZE = 512
N_WRITERS = 3
WRITES_PER_CLIENT = 60


def block_payload(block, generation):
    header = f"blk={block:04d} gen={generation:04d} ".encode()
    return header + bytes((block * 7 + generation + i) % 256
                          for i in range(BLOCK_SIZE - len(header)))


def main():
    sim = Simulator()
    hosts = [f"disk{i}" for i in range(3)] + [
        f"host{i}" for i in range(N_WRITERS + 1)]
    fabric = make_fabric(sim, RACK, hosts)
    replicas = [PrismRsReplica(sim, fabric, f"disk{i}",
                               SoftwarePrismBackend, n_blocks=N_BLOCKS,
                               block_size=BLOCK_SIZE)
                for i in range(3)]
    print("formatting virtual disk "
          f"({N_BLOCKS} blocks x {BLOCK_SIZE} B on 3 replicas)...")
    for block in range(N_BLOCKS):
        initial = block_payload(block, 0)
        for replica in replicas:
            replica.load(block, initial)

    journal = {}  # block -> latest generation this run wrote

    def writer(index):
        client = PrismRsClient(sim, fabric, f"host{index}", replicas,
                               client_id=index + 1)
        rng = SeededRng(13).fork(index).stream("io")
        for generation in range(1, WRITES_PER_CLIENT + 1):
            block = rng.randrange(N_BLOCKS)
            yield from client.put(block,
                                  block_payload(block, generation))
            previous = journal.get(block, (0, 0))
            journal[block] = max(previous, (sim.now, generation))

    def grim_reaper():
        yield sim.timeout(300.0)
        print(f"t={sim.now:7.1f} us  !! replica disk2 crashes "
              "(f=1 of n=3; the disk stays available)")
        replicas[2].prism.fail()

    processes = [sim.spawn(writer(i)) for i in range(N_WRITERS)]
    sim.spawn(grim_reaper())
    waiter = sim.spawn((lambda done: (yield done))(sim.all_of(processes)))
    sim.run_until_complete(waiter, limit=1e8)
    print(f"t={sim.now:7.1f} us  {N_WRITERS * WRITES_PER_CLIENT} writes "
          f"complete across {len(journal)} distinct blocks")

    # Full scrub from a fresh client: every journaled block must hold a
    # complete, correctly-formatted payload (no torn writes, no lost
    # updates visible through the surviving majority).
    scrubber = PrismRsClient(sim, fabric, f"host{N_WRITERS}", replicas,
                             client_id=N_WRITERS + 1)
    stats = {"scrubbed": 0}

    def scrub():
        for block in sorted(journal):
            data = yield from scrubber.get(block)
            tag = data[:18].decode(errors="replace")
            assert tag.startswith(f"blk={block:04d} "), tag
            generation = int(tag[13:17])
            assert data == block_payload(block, generation)
            stats["scrubbed"] += 1

    sim.run_until_complete(sim.spawn(scrub()), limit=1e8)
    print(f"t={sim.now:7.1f} us  scrub OK: {stats['scrubbed']} blocks "
          "verified byte-for-byte through the surviving quorum")
    dropped = replicas[2].prism.requests_dropped
    print(f"               (crashed replica silently dropped {dropped} "
          "requests)")


if __name__ == "__main__":
    main()
